package trace

import (
	"strings"
	"testing"

	"gridseg/internal/dynamics"
	"gridseg/internal/grid"
	"gridseg/internal/rng"
)

func newProc(t *testing.T) *dynamics.Process {
	t.Helper()
	lat := grid.Random(24, 0.5, rng.New(3))
	p, err := dynamics.New(lat, 2, 0.45, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRecorderValidation(t *testing.T) {
	p := newProc(t)
	if _, err := NewRecorder(nil, 10, false); err == nil {
		t.Fatal("want error for nil observable")
	}
	if _, err := NewRecorder(p, 0, false); err == nil {
		t.Fatal("want error for zero interval")
	}
}

func TestRecorderSeries(t *testing.T) {
	p := newProc(t)
	r, err := NewRecorder(p, 25, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Samples()) != 1 {
		t.Fatalf("initial sample missing: %d", len(r.Samples()))
	}
	for {
		if _, ok := p.Step(); !ok {
			break
		}
		r.Tick()
	}
	r.Finish()
	samples := r.Samples()
	if len(samples) < 3 {
		t.Fatalf("too few samples: %d", len(samples))
	}
	// Flips strictly increase; time non-decreasing; final unhappy 0.
	for i := 1; i < len(samples); i++ {
		if samples[i].Flips <= samples[i-1].Flips {
			t.Fatal("flips must increase between samples")
		}
		if samples[i].Time < samples[i-1].Time {
			t.Fatal("time must be non-decreasing")
		}
	}
	last := samples[len(samples)-1]
	if last.UnhappyCount != 0 || last.HappyFraction != 1 {
		t.Fatalf("final sample %+v, want fully happy", last)
	}
	if last.Flips != p.Flips() {
		t.Fatal("Finish must capture the terminal state")
	}
}

func TestRecorderFinishIdempotentWhenCurrent(t *testing.T) {
	p := newProc(t)
	r, err := NewRecorder(p, 1000000, false)
	if err != nil {
		t.Fatal(err)
	}
	n := len(r.Samples())
	r.Finish() // no flips since the initial sample
	if len(r.Samples()) != n {
		t.Fatal("Finish must not duplicate the current sample")
	}
}

func TestRecorderTable(t *testing.T) {
	p := newProc(t)
	r, err := NewRecorder(p, 50, true)
	if err != nil {
		t.Fatal(err)
	}
	p.Run(120)
	r.Finish()
	tb := r.Table("trace")
	if len(tb.Columns) != 5 {
		t.Fatalf("columns = %v", tb.Columns)
	}
	if len(tb.Rows) != len(r.Samples()) {
		t.Fatal("rows must match samples")
	}
	if !strings.Contains(tb.String(), "interface density") {
		t.Fatal("interface column missing")
	}
	// Without interface the column is absent.
	r2, err := NewRecorder(newProc(t), 50, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(r2.Table("t").Columns) != 4 {
		t.Fatal("unexpected interface column")
	}
}

// The recorder also works with the variant process (same interface).
func TestRecorderWithVariant(t *testing.T) {
	lat := grid.Random(20, 0.5, rng.New(9))
	v, err := dynamics.NewVariant(lat, 2, dynamics.VariantOptions{TauPlus: 0.45, TauMinus: 0.45}, rng.New(10))
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRecorder(v, 20, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, ok := v.Step(); !ok {
			break
		}
		r.Tick()
	}
	r.Finish()
	if len(r.Samples()) < 2 {
		t.Fatal("variant trace too short")
	}
}
