package trace

import (
	"strings"
	"testing"

	"gridseg/internal/dynamics"
	"gridseg/internal/grid"
	"gridseg/internal/rng"
)

func newProc(t *testing.T) *dynamics.Process {
	t.Helper()
	lat := grid.Random(24, 0.5, rng.New(3))
	p, err := dynamics.New(lat, 2, 0.45, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRecorderValidation(t *testing.T) {
	p := newProc(t)
	if _, err := NewRecorder(nil, 10, false); err == nil {
		t.Fatal("want error for nil observable")
	}
	if _, err := NewRecorder(p, 0, false); err == nil {
		t.Fatal("want error for zero interval")
	}
}

func TestRecorderSeries(t *testing.T) {
	p := newProc(t)
	r, err := NewRecorder(p, 25, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Samples()) != 1 {
		t.Fatalf("initial sample missing: %d", len(r.Samples()))
	}
	for {
		if _, ok := p.Step(); !ok {
			break
		}
		r.Tick()
	}
	r.Finish()
	samples := r.Samples()
	if len(samples) < 3 {
		t.Fatalf("too few samples: %d", len(samples))
	}
	// Flips strictly increase; time non-decreasing; final unhappy 0.
	for i := 1; i < len(samples); i++ {
		if samples[i].Flips <= samples[i-1].Flips {
			t.Fatal("flips must increase between samples")
		}
		if samples[i].Time < samples[i-1].Time {
			t.Fatal("time must be non-decreasing")
		}
	}
	last := samples[len(samples)-1]
	if last.UnhappyCount != 0 || last.HappyFraction != 1 {
		t.Fatalf("final sample %+v, want fully happy", last)
	}
	if last.Flips != p.Flips() {
		t.Fatal("Finish must capture the terminal state")
	}
}

func TestRecorderFinishIdempotentWhenCurrent(t *testing.T) {
	p := newProc(t)
	r, err := NewRecorder(p, 1000000, false)
	if err != nil {
		t.Fatal(err)
	}
	n := len(r.Samples())
	r.Finish() // no flips since the initial sample
	if len(r.Samples()) != n {
		t.Fatal("Finish must not duplicate the current sample")
	}
}

func TestRecorderTable(t *testing.T) {
	p := newProc(t)
	r, err := NewRecorder(p, 50, true)
	if err != nil {
		t.Fatal(err)
	}
	p.Run(120)
	r.Finish()
	tb := r.Table("trace")
	if len(tb.Columns) != 5 {
		t.Fatalf("columns = %v", tb.Columns)
	}
	if len(tb.Rows) != len(r.Samples()) {
		t.Fatal("rows must match samples")
	}
	if !strings.Contains(tb.String(), "interface density") {
		t.Fatal("interface column missing")
	}
	// Without interface the column is absent.
	r2, err := NewRecorder(newProc(t), 50, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(r2.Table("t").Columns) != 4 {
		t.Fatal("unexpected interface column")
	}
}

// The recorder also works with the variant process (same interface).
func TestRecorderWithVariant(t *testing.T) {
	lat := grid.Random(20, 0.5, rng.New(9))
	v, err := dynamics.NewVariant(lat, 2, dynamics.VariantOptions{TauPlus: 0.45, TauMinus: 0.45}, rng.New(10))
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRecorder(v, 20, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, ok := v.Step(); !ok {
			break
		}
		r.Tick()
	}
	r.Finish()
	if len(r.Samples()) < 2 {
		t.Fatal("variant trace too short")
	}
}

// TestRecorderFixationTailRecorded is the regression test for the
// dropped-tail bug: a run that fixates between interval boundaries
// must still record its terminal state, even when the driver only
// calls Tick (never Finish). Before the fix, the huge interval meant
// no Tick ever fired and the whole trajectory after the initial
// sample was silently lost.
func TestRecorderFixationTailRecorded(t *testing.T) {
	p := newProc(t)
	r, err := NewRecorder(p, 1<<40, false)
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, ok := p.Step(); !ok {
			break
		}
		r.Tick()
	}
	if !p.Fixated() {
		t.Fatal("process should have fixated")
	}
	samples := r.Samples()
	if len(samples) != 2 {
		t.Fatalf("want initial + terminal samples, got %d", len(samples))
	}
	last := samples[len(samples)-1]
	if last.Flips != p.Flips() {
		t.Fatalf("terminal sample at flip %d, process at %d", last.Flips, p.Flips())
	}
	if last.UnhappyCount != 0 {
		t.Fatalf("terminal sample %+v, want fixated state", last)
	}
	// Finish after the fixation-aware Tick must not duplicate.
	r.Finish()
	if len(r.Samples()) != len(samples) {
		t.Fatal("Finish duplicated the terminal sample")
	}
	// And Tick after fixation must not keep appending.
	r.Tick()
	if len(r.Samples()) != len(samples) {
		t.Fatal("Tick duplicated the terminal sample after fixation")
	}
}

// TestRecorderGeometry checks the opt-in geometry observables appear
// in samples and the rendered table, and that the initial sample is
// backfilled.
func TestRecorderGeometry(t *testing.T) {
	p := newProc(t)
	r, err := NewRecorder(p, 50, true)
	if err != nil {
		t.Fatal(err)
	}
	r.IncludeGeometry(false)
	if r.Samples()[0].InterfaceLength == 0 {
		t.Fatal("initial sample should carry a nonzero interface length on a random lattice")
	}
	p.Run(120)
	r.Finish()
	last := r.Samples()[len(r.Samples())-1]
	if last.InterfaceLength <= 0 {
		t.Fatalf("interface length = %v, want > 0 mid-run", last.InterfaceLength)
	}
	tb := r.Table("trace")
	if len(tb.Columns) != 7 {
		t.Fatalf("columns = %v", tb.Columns)
	}
	if !strings.Contains(tb.String(), "curvature") {
		t.Fatal("curvature column missing")
	}
}
