// Package ising provides the statistical-physics view of the model that
// the paper invokes (Section I.A): the Schelling process at tau = 1/2 is
// a zero-temperature Ising model with Glauber dynamics on the extended
// Moore neighborhood graph. The package computes the Hamiltonian,
// magnetization, local fields, domain-wall density and two-point
// correlations of a lattice configuration, and exposes the rule
// equivalence as a checkable predicate.
package ising

import (
	"gridseg/internal/geom"
	"gridseg/internal/grid"
)

// Magnetization returns (n_plus - n_minus) / n^2 in [-1, 1].
func Magnetization(l *grid.Lattice) float64 {
	plus := l.CountPlus()
	total := l.Sites()
	return float64(2*plus-total) / float64(total)
}

// LocalField returns the field h(u) = sum of spins over N_w(u) \ {u}:
// positive when the neighborhood leans +1. The spin of u itself is
// excluded, matching the physics convention.
func LocalField(l *grid.Lattice, u geom.Point, w int, counts []int32) int {
	nbhd := geom.SquareSize(w)
	i := l.Torus().Index(l.Torus().WrapPoint(u))
	plus := int(counts[i])
	field := 2*plus - nbhd // sum of spins including u
	return field - int(l.SpinAt(i))
}

// Energy returns the extended-Moore Hamiltonian
// H = -(1/2) sum_u s(u) h(u), i.e. minus the number of aligned
// interacting pairs plus the number of misaligned ones, each pair
// counted once. A monochromatic lattice minimizes it.
func Energy(l *grid.Lattice, w int) float64 {
	counts := l.WindowCounts(w)
	var acc int64
	tor := l.Torus()
	for i := 0; i < l.Sites(); i++ {
		h := LocalField(l, tor.At(i), w, counts)
		acc += int64(l.SpinAt(i)) * int64(h)
	}
	return -float64(acc) / 2
}

// DomainWallDensity returns the fraction of misaligned nearest-neighbor
// (4-adjacency) pairs, the standard zero-temperature coarsening
// observable: 0 when fully ordered.
func DomainWallDensity(l *grid.Lattice) float64 {
	n := l.N()
	mismatched := 0
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			s := l.Spin(geom.Point{X: x, Y: y})
			if l.Spin(geom.Point{X: x + 1, Y: y}) != s {
				mismatched++
			}
			if l.Spin(geom.Point{X: x, Y: y + 1}) != s {
				mismatched++
			}
		}
	}
	return float64(mismatched) / float64(2*n*n)
}

// Correlation returns the two-point function C(r) = <s(u) s(u+r e_x)>
// averaged over all sites and both axis directions, for r = 0..rMax.
// C(0) = 1 always; segregated configurations have slowly decaying C.
func Correlation(l *grid.Lattice, rMax int) []float64 {
	n := l.N()
	if rMax >= n/2 {
		rMax = n/2 - 1
	}
	if rMax < 0 {
		rMax = 0
	}
	out := make([]float64, rMax+1)
	for r := 0; r <= rMax; r++ {
		var acc int64
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				s := int64(l.Spin(geom.Point{X: x, Y: y}))
				acc += s * int64(l.Spin(geom.Point{X: x + r, Y: y}))
				acc += s * int64(l.Spin(geom.Point{X: x, Y: y + r}))
			}
		}
		out[r] = float64(acc) / float64(2*n*n)
	}
	return out
}

// MajorityFlipLowersEnergy reports whether flipping the agent at u
// strictly lowers the Hamiltonian — the zero-temperature Glauber
// acceptance rule. Flipping changes the energy by 2 s(u) h(u), so this
// holds iff the spin opposes its local field.
func MajorityFlipLowersEnergy(l *grid.Lattice, u geom.Point, w int, counts []int32) bool {
	i := l.Torus().Index(l.Torus().WrapPoint(u))
	h := LocalField(l, u, w, counts)
	return int(l.SpinAt(i))*h < 0
}

// SchellingFlipAdmissible mirrors the model's flip rule for threshold
// thresh over neighborhood size N: unhappy and flip-makes-happy.
func SchellingFlipAdmissible(l *grid.Lattice, u geom.Point, w, thresh int, counts []int32) bool {
	i := l.Torus().Index(l.Torus().WrapPoint(u))
	nbhd := geom.SquareSize(w)
	plus := int(counts[i])
	same := plus
	if l.SpinAt(i) == grid.Minus {
		same = nbhd - plus
	}
	return same < thresh && nbhd-same+1 >= thresh
}

// EquivalenceAtHalf checks, for a single site, the Section I.A
// correspondence: at tau = 1/2 (threshold ceil(N/2)), the Schelling flip
// rule agrees with the strict-majority (energy-lowering) rule of the
// zero-temperature Ising-Glauber dynamic.
//
// In detail: with N = (2w+1)^2 odd, same(u) < ceil(N/2) means strictly
// fewer than half the sites of N(u) share u's type, i.e.
// s(u)*h(u) < -1 < 0 (h excludes u), so the flip lowers the energy; and
// conversely.
func EquivalenceAtHalf(l *grid.Lattice, u geom.Point, w int, counts []int32) bool {
	nbhd := geom.SquareSize(w)
	thresh := (nbhd + 1) / 2 // ceil(N/2) for odd N = ceil(0.5*N)
	return SchellingFlipAdmissible(l, u, w, thresh, counts) ==
		MajorityFlipLowersEnergy(l, u, w, counts)
}
