package ising

import (
	"math"
	"testing"
	"testing/quick"

	"gridseg/internal/dynamics"
	"gridseg/internal/geom"
	"gridseg/internal/grid"
	"gridseg/internal/rng"
)

func TestMagnetization(t *testing.T) {
	if got := Magnetization(grid.New(6, grid.Plus)); got != 1 {
		t.Fatalf("all-plus magnetization = %v, want 1", got)
	}
	if got := Magnetization(grid.New(6, grid.Minus)); got != -1 {
		t.Fatalf("all-minus magnetization = %v, want -1", got)
	}
	l := grid.Random(64, 0.5, rng.New(1))
	if got := Magnetization(l); math.Abs(got) > 0.1 {
		t.Fatalf("balanced magnetization = %v, want ~0", got)
	}
}

func TestLocalFieldHandCase(t *testing.T) {
	// All-minus lattice: for any u, h = -(N-1).
	l := grid.New(9, grid.Minus)
	counts := l.WindowCounts(1)
	h := LocalField(l, geom.Point{X: 4, Y: 4}, 1, counts)
	if h != -8 {
		t.Fatalf("h = %d, want -8", h)
	}
	// Flip the center: field at the center unchanged (excludes self).
	l.Set(geom.Point{X: 4, Y: 4}, grid.Plus)
	counts = l.WindowCounts(1)
	if h := LocalField(l, geom.Point{X: 4, Y: 4}, 1, counts); h != -8 {
		t.Fatalf("h after self flip = %d, want -8", h)
	}
	// A neighbor now sees field -8 + 2 = -6.
	if h := LocalField(l, geom.Point{X: 3, Y: 4}, 1, counts); h != -6 {
		t.Fatalf("neighbor h = %d, want -6", h)
	}
}

func TestEnergyGroundState(t *testing.T) {
	// Monochromatic: every ordered pair aligned; H = -n^2 (N-1)/2.
	l := grid.New(9, grid.Plus)
	got := Energy(l, 1)
	want := -float64(81*8) / 2
	if got != want {
		t.Fatalf("ground energy = %v, want %v", got, want)
	}
	// Symmetric under global flip.
	if Energy(grid.New(9, grid.Minus), 1) != want {
		t.Fatal("energy must be spin-flip symmetric")
	}
}

func TestEnergyDecreasesUnderDynamicsAtHalf(t *testing.T) {
	l := grid.Random(24, 0.5, rng.New(3))
	proc, err := dynamics.New(l, 1, 0.5, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	prev := Energy(l, 1)
	for i := 0; i < 100; i++ {
		if _, ok := proc.Step(); !ok {
			break
		}
		e := Energy(l, 1)
		if e >= prev {
			t.Fatalf("energy did not strictly decrease at tau=1/2: %v -> %v", prev, e)
		}
		prev = e
	}
}

func TestDomainWallDensity(t *testing.T) {
	if got := DomainWallDensity(grid.New(8, grid.Plus)); got != 0 {
		t.Fatalf("ordered wall density = %v, want 0", got)
	}
	l := grid.Random(64, 0.5, rng.New(5))
	got := DomainWallDensity(l)
	if math.Abs(got-0.5) > 0.05 {
		t.Fatalf("disordered wall density = %v, want ~0.5", got)
	}
}

func TestCorrelation(t *testing.T) {
	l := grid.Random(64, 0.5, rng.New(7))
	c := Correlation(l, 5)
	if len(c) != 6 {
		t.Fatalf("len = %d", len(c))
	}
	if c[0] != 1 {
		t.Fatalf("C(0) = %v, want 1", c[0])
	}
	// Independent spins: correlations near zero for r >= 1.
	for r := 1; r <= 5; r++ {
		if math.Abs(c[r]) > 0.1 {
			t.Fatalf("C(%d) = %v, want ~0 for i.i.d. spins", r, c[r])
		}
	}
	// Ordered lattice: correlation 1 at every distance.
	mono := Correlation(grid.New(16, grid.Minus), 4)
	for r, v := range mono {
		if v != 1 {
			t.Fatalf("ordered C(%d) = %v, want 1", r, v)
		}
	}
}

func TestCorrelationClampsRange(t *testing.T) {
	l := grid.New(8, grid.Plus)
	c := Correlation(l, 100)
	if len(c) != 4 { // rMax clamped to n/2 - 1 = 3
		t.Fatalf("len = %d, want 4", len(c))
	}
}

// The Section I.A equivalence: at tau = 1/2 the Schelling flip rule is
// exactly the energy-lowering (strict majority) rule, at every site of
// random configurations.
func TestQuickEquivalenceAtHalf(t *testing.T) {
	f := func(seed uint64) bool {
		l := grid.Random(12, 0.5, rng.New(seed))
		counts := l.WindowCounts(1)
		for i := 0; i < l.Sites(); i++ {
			if !EquivalenceAtHalf(l, l.Torus().At(i), 1, counts) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Segregation raises correlations: after running the process, C(r) at
// short range must exceed the initial (near-zero) value.
func TestSegregationRaisesCorrelation(t *testing.T) {
	l := grid.Random(48, 0.5, rng.New(9))
	before := Correlation(l, 3)
	proc, err := dynamics.New(l, 2, 0.45, rng.New(10))
	if err != nil {
		t.Fatal(err)
	}
	proc.Run(0)
	after := Correlation(l, 3)
	if after[2] <= before[2]+0.1 {
		t.Fatalf("C(2): before %v, after %v; segregation must raise it", before[2], after[2])
	}
}

func TestSchellingFlipAdmissibleMatchesDynamics(t *testing.T) {
	l := grid.Random(16, 0.5, rng.New(11))
	proc, err := dynamics.New(l.Clone(), 2, 0.42, rng.New(12))
	if err != nil {
		t.Fatal(err)
	}
	counts := l.WindowCounts(2)
	thresh := proc.Threshold()
	for i := 0; i < l.Sites(); i++ {
		want := proc.Flippable(i)
		got := SchellingFlipAdmissible(l, l.Torus().At(i), 2, thresh, counts)
		if got != want {
			t.Fatalf("site %d: ising view %v, dynamics %v", i, got, want)
		}
	}
}
