package dynamics

import (
	"testing"

	"gridseg/internal/grid"
	"gridseg/internal/rng"
	"gridseg/internal/theory"
)

// newScenarioLattice draws a lattice for scenario tests.
func newScenarioLattice(t *testing.T, n int, rho float64, seed uint64) *grid.Lattice {
	t.Helper()
	l := grid.RandomScenario(n, 0.5, rho, rng.New(seed))
	if rho > 0 && !l.HasVacancies() {
		t.Fatalf("rho=%v lattice drew no vacancies", rho)
	}
	return l
}

// TestScenarioDefaultMatchesNew pins seed stability: the scenario
// constructor with a zero scenario replays New's trajectory exactly.
func TestScenarioDefaultMatchesNew(t *testing.T) {
	a, err := New(grid.Random(24, 0.5, rng.New(3)), 2, 0.42, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewScenario(grid.Random(24, 0.5, rng.New(3)), 2, 0.42, Scenario{}, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	a.Run(0)
	b.Run(0)
	if a.Flips() != b.Flips() || a.Time() != b.Time() || a.Lattice().String() != b.Lattice().String() {
		t.Fatal("zero scenario diverges from New")
	}
}

// TestOpenBoundaryProcess runs an open-boundary process to fixation
// and audits its bookkeeping along the way. Every flip must still
// raise Phi, and the per-site thresholds must honor the truncated
// windows.
func TestOpenBoundaryProcess(t *testing.T) {
	lat := newScenarioLattice(t, 24, 0, 11)
	p, err := NewScenario(lat, 2, 0.42, Scenario{Open: true}, rng.New(12))
	if err != nil {
		t.Fatal(err)
	}
	// Corner site 0 has a clamped 3x3 window: occ = 9, not 25.
	if got := p.occAt(0); got != 9 {
		t.Fatalf("corner occ = %d, want 9", got)
	}
	if got := p.threshAt(0); got != theory.Threshold(0.42, 9) {
		t.Fatalf("corner thresh = %d, want %d", got, theory.Threshold(0.42, 9))
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	phi := p.Phi()
	for ev := 0; ; ev++ {
		if _, ok := p.Step(); !ok {
			break
		}
		if next := p.Phi(); next <= phi {
			t.Fatalf("event %d: Phi %d -> %d (must strictly increase)", ev, phi, next)
		} else {
			phi = next
		}
		if ev%64 == 0 {
			if err := p.CheckInvariants(); err != nil {
				t.Fatalf("event %d: %v", ev, err)
			}
		}
	}
	if !p.Fixated() {
		t.Fatal("not fixated after Run")
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestVacancyGlauberProcess checks the vacancy-diluted flip dynamic:
// vacant sites never flip, occupancy is static, and the bookkeeping
// stays consistent to fixation.
func TestVacancyGlauberProcess(t *testing.T) {
	lat := newScenarioLattice(t, 24, 0.1, 21)
	vacBefore := lat.Sites() - lat.CountOccupied()
	p, err := NewScenario(lat, 2, 0.42, Scenario{}, rng.New(22))
	if err != nil {
		t.Fatal(err)
	}
	if p.Agents() != lat.CountOccupied() {
		t.Fatalf("agents = %d, want %d", p.Agents(), lat.CountOccupied())
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	steps := 0
	for {
		if _, ok := p.Step(); !ok {
			break
		}
		steps++
		if steps%64 == 0 {
			if err := p.CheckInvariants(); err != nil {
				t.Fatalf("event %d: %v", steps, err)
			}
		}
	}
	if got := lat.Sites() - lat.CountOccupied(); got != vacBefore {
		t.Fatalf("vacancies %d -> %d under flips", vacBefore, got)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestPerSiteTauProcess pins heterogeneous intolerance: sites with
// tau=0 are always happy, and the thresholds reflect each site's own
// tau.
func TestPerSiteTauProcess(t *testing.T) {
	n := 16
	lat := grid.Random(n, 0.5, rng.New(31))
	taus := make([]float64, n*n)
	for i := range taus {
		if i%2 == 0 {
			taus[i] = 0.45
		}
	}
	p, err := NewScenario(lat, 2, 0.42, Scenario{Taus: taus}, rng.New(32))
	if err != nil {
		t.Fatal(err)
	}
	nbhd := p.NeighborhoodSize()
	if got := p.threshAt(0); got != theory.Threshold(0.45, nbhd) {
		t.Fatalf("thresh[0] = %d, want %d", got, theory.Threshold(0.45, nbhd))
	}
	if got := p.threshAt(1); got != 0 {
		t.Fatalf("thresh[1] = %d, want 0 (tau=0)", got)
	}
	if !p.Happy(1) {
		t.Fatal("tau=0 site is unhappy")
	}
	p.Run(0)
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// All tau=0 sites end happy, trivially.
	for i := 1; i < n*n; i += 2 {
		if !p.Happy(i) {
			t.Fatalf("tau=0 site %d unhappy at fixation", i)
		}
	}
}

// TestHappyAsVacantSite pins the hypothetical-placement semantics on
// vacant sites against brute force: the probe joins the window as one
// extra occupant and must be counted exactly once (a regression test —
// the minus-probe path once counted it twice).
func TestHappyAsVacantSite(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		lat := grid.RandomScenario(9, 0.5, 0.3, rng.New(seed))
		if !lat.HasVacancies() {
			continue
		}
		p, err := NewScenario(lat, 1, 0.5, Scenario{}, rng.New(seed+100))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < lat.Sites(); i++ {
			if lat.OccupiedAt(i) {
				continue
			}
			for _, s := range []grid.Spin{grid.Plus, grid.Minus} {
				got := p.HappyAs(i, s)
				// Brute force: place, ask the rebuilt process, restore.
				lat.SetAt(i, s)
				fresh, err := NewScenario(lat.Clone(), 1, 0.5, Scenario{}, rng.New(1))
				if err != nil {
					t.Fatal(err)
				}
				want := fresh.Happy(i)
				lat.SetAt(i, grid.None)
				if got != want {
					t.Fatalf("seed %d site %d probe %v: HappyAs=%v brute=%v", seed, i, s, got, want)
				}
			}
		}
	}
}

// TestScenarioValidation covers the constructor's rejections.
func TestScenarioValidation(t *testing.T) {
	lat := grid.Random(9, 0.5, rng.New(1))
	if _, err := NewScenario(lat, 2, 0.42, Scenario{Taus: []float64{0.1}}, rng.New(2)); err == nil {
		t.Error("short tau field accepted")
	}
	bad := make([]float64, lat.Sites())
	bad[7] = 1.5
	if _, err := NewScenario(lat, 2, 0.42, Scenario{Taus: bad}, rng.New(2)); err == nil {
		t.Error("out-of-range per-site tau accepted")
	}
}

// TestMoveDynamic runs the relocation dynamic on a vacancy lattice:
// type counts are conserved, vacancy count is conserved, every
// successful move strictly reduces nothing it shouldn't, and the
// bookkeeping survives an invariant audit throughout.
func TestMoveDynamic(t *testing.T) {
	lat := newScenarioLattice(t, 20, 0.15, 41)
	plus, minus := lat.CountPlus(), lat.CountMinus()
	vac := lat.Sites() - lat.CountOccupied()
	m, err := NewMove(lat, 2, 0.42, Scenario{}, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 2000; a++ {
		moved, done := m.StepAttempt()
		if done {
			break
		}
		if moved && a%20 == 0 {
			if err := m.CheckInvariants(); err != nil {
				t.Fatalf("attempt %d: %v", a, err)
			}
		}
	}
	if lat.CountPlus() != plus || lat.CountMinus() != minus {
		t.Fatalf("type counts changed: %d/%d -> %d/%d", plus, minus, lat.CountPlus(), lat.CountMinus())
	}
	if got := lat.Sites() - lat.CountOccupied(); got != vac {
		t.Fatalf("vacancy count changed: %d -> %d", vac, got)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if m.Moves() == 0 {
		t.Fatal("no successful relocation in 2000 attempts")
	}
	// A successful move leaves the mover happy at its new site; after
	// Run with a generous budget, either no unhappy agents remain or
	// the budget/streak stopped it — both leave consistent state.
	m.Run(int64(20*lat.Sites()), int64(lat.Sites()))
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestMoveRequiresVacancies pins the constructor guard.
func TestMoveRequiresVacancies(t *testing.T) {
	if _, err := NewMove(grid.Random(9, 0.5, rng.New(1)), 1, 0.4, Scenario{}, rng.New(2)); err == nil {
		t.Fatal("move dynamic accepted a fully occupied lattice")
	}
}

// TestMoveDeterminism pins the relocation dynamic's reproducibility.
func TestMoveDeterminism(t *testing.T) {
	run := func() (int64, string) {
		lat := grid.RandomScenario(16, 0.5, 0.1, rng.New(51))
		m, err := NewMove(lat, 2, 0.42, Scenario{Open: true}, rng.New(52))
		if err != nil {
			t.Fatal(err)
		}
		m.Run(5000, 0)
		return m.Moves(), lat.String()
	}
	m1, s1 := run()
	m2, s2 := run()
	if m1 != m2 || s1 != s2 {
		t.Fatal("move dynamic not deterministic")
	}
}

// TestKawasakiScenario runs swaps under vacancies and open boundaries
// with the invariant audit on.
func TestKawasakiScenario(t *testing.T) {
	lat := newScenarioLattice(t, 20, 0.1, 61)
	plus, minus := lat.CountPlus(), lat.CountMinus()
	k, err := NewKawasakiScenario(lat, 2, 0.42, Scenario{Open: true}, rng.New(62))
	if err != nil {
		t.Fatal(err)
	}
	if err := k.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	k.Run(2000, 0)
	if lat.CountPlus() != plus || lat.CountMinus() != minus {
		t.Fatal("Kawasaki scenario does not conserve type counts")
	}
	if err := k.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestMoveAcceptanceEquivalence pins the read-only acceptance check of
// StepAttempt against the definitional form: physically relocate the
// agent, ask Happy at the destination, and revert. The two must agree
// for every (unhappy agent, vacant site) pair.
func TestMoveAcceptanceEquivalence(t *testing.T) {
	for _, open := range []bool{false, true} {
		lat := grid.RandomScenario(16, 0.5, 0.2, rng.New(71))
		m, err := NewMove(lat, 2, 0.45, Scenario{Open: open}, rng.New(72))
		if err != nil {
			t.Fatal(err)
		}
		checked := 0
		for _, u32 := range m.unhappySet.Items() {
			for _, v32 := range m.vacantSet.Items() {
				u, v := int(u32), int(v32)
				s := lat.SpinAt(u)
				got := m.wouldBeHappy(u, v, s)
				m.relocate(u, v)
				want := m.p.Happy(v)
				m.relocate(v, u)
				if got != want {
					t.Fatalf("open=%v u=%d v=%d: wouldBeHappy=%v, relocate says %v", open, u, v, got, want)
				}
				checked++
			}
			if checked > 2000 {
				break
			}
		}
		if checked == 0 {
			t.Fatal("no pairs checked")
		}
		if err := m.CheckInvariants(); err != nil {
			t.Fatalf("state mutated by equivalence sweep: %v", err)
		}
	}
}
