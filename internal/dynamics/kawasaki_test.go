package dynamics

import (
	"testing"

	"gridseg/internal/grid"
	"gridseg/internal/rng"
)

func mustKawasaki(t *testing.T, lat *grid.Lattice, w int, tau float64, seed uint64) *Kawasaki {
	t.Helper()
	k, err := NewKawasaki(lat, w, tau, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestKawasakiValidation(t *testing.T) {
	if _, err := NewKawasaki(grid.New(9, grid.Plus), 0, 0.5, rng.New(1)); err == nil {
		t.Fatal("want error for zero horizon")
	}
}

func TestKawasakiConservesTypeCounts(t *testing.T) {
	lat := grid.Random(20, 0.5, rng.New(31))
	plusBefore := lat.CountPlus()
	k := mustKawasaki(t, lat, 2, 0.45, 32)
	k.Run(2000, 0)
	if lat.CountPlus() != plusBefore {
		t.Fatalf("Kawasaki must conserve type counts: %d -> %d", plusBefore, lat.CountPlus())
	}
}

func TestKawasakiSwapMakesBothHappy(t *testing.T) {
	lat := grid.Random(20, 0.5, rng.New(33))
	k := mustKawasaki(t, lat, 2, 0.45, 34)
	for i := 0; i < 500; i++ {
		before := lat.Clone()
		swapped, done := k.StepAttempt()
		if done {
			break
		}
		if !swapped {
			// Failed attempts must leave the lattice unchanged.
			if !lat.Equal(before) {
				t.Fatal("failed swap attempt mutated the lattice")
			}
			continue
		}
		// A successful swap changes exactly two sites, of opposite types.
		diff := 0
		for j := 0; j < lat.Sites(); j++ {
			if lat.SpinAt(j) != before.SpinAt(j) {
				diff++
				if !k.p.Happy(j) {
					t.Fatal("swapped-in agent must be happy")
				}
			}
		}
		if diff != 2 {
			t.Fatalf("swap changed %d sites, want 2", diff)
		}
	}
}

func TestKawasakiInvariants(t *testing.T) {
	lat := grid.Random(16, 0.5, rng.New(35))
	k := mustKawasaki(t, lat, 2, 0.45, 36)
	if err := k.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	k.Run(300, 0)
	if err := k.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestKawasakiDoneWhenOneSideHappy(t *testing.T) {
	// All-plus lattice: nobody is unhappy; StepAttempt reports done.
	k := mustKawasaki(t, grid.New(9, grid.Plus), 1, 0.5, 37)
	if swapped, done := k.StepAttempt(); swapped || !done {
		t.Fatal("no unhappy pair must mean done")
	}
	if n, done := k.Run(10, 0); n != 0 || !done {
		t.Fatal("Run must report done with no unhappy pairs")
	}
}

func TestKawasakiFailStreakStops(t *testing.T) {
	lat := grid.Random(16, 0.5, rng.New(39))
	k := mustKawasaki(t, lat, 2, 0.2, 40)
	// With very tolerant agents almost nobody is unhappy and most
	// sampled swaps fail; the streak bound must stop the run.
	_, done := k.Run(1_000_000, 50)
	_ = done // done may be true or false; the point is Run returned.
	if k.Attempts() > 1_000_000 {
		t.Fatal("attempt budget exceeded")
	}
}

func TestKawasakiCountersAdvance(t *testing.T) {
	lat := grid.Random(20, 0.5, rng.New(41))
	k := mustKawasaki(t, lat, 2, 0.45, 42)
	k.Run(500, 0)
	if k.Attempts() == 0 {
		t.Fatal("attempts must advance on a disordered lattice")
	}
	plus, minus := k.UnhappyByType()
	if plus < 0 || minus < 0 {
		t.Fatal("negative unhappy counts")
	}
}

func TestThresholdFor(t *testing.T) {
	thresh, nbhd, err := ThresholdFor(0.42, 10)
	if err != nil {
		t.Fatal(err)
	}
	if nbhd != 441 || thresh != 186 {
		t.Fatalf("ThresholdFor = (%d, %d), want (186, 441)", thresh, nbhd)
	}
	if _, _, err := ThresholdFor(0.42, 0); err == nil {
		t.Fatal("want error for zero horizon")
	}
}

func TestKawasakiReducesUnhappiness(t *testing.T) {
	lat := grid.Random(24, 0.5, rng.New(43))
	k := mustKawasaki(t, lat, 2, 0.45, 44)
	before := k.p.UnhappyCount()
	k.Run(5000, 200)
	after := k.p.UnhappyCount()
	if k.Swaps() > 0 && after > before {
		t.Fatalf("unhappiness grew from %d to %d despite %d swaps", before, after, k.Swaps())
	}
}
