package fastglauber

import (
	"errors"
	"testing"

	"gridseg/internal/dynamics"
	"gridseg/internal/grid"
	"gridseg/internal/rng"
	"gridseg/internal/topology"
)

// newPair builds a reference and a fast engine over independent copies
// of the same random lattice, each with its own identically seeded
// random source.
func newPair(t *testing.T, n, w int, tau, p float64, seed uint64) (*dynamics.Process, *Process) {
	t.Helper()
	lat := grid.Random(n, p, rng.New(seed).Split(1))
	ref, err := dynamics.New(lat.Clone(), w, tau, rng.New(seed).Split(2))
	if err != nil {
		t.Fatalf("reference New: %v", err)
	}
	fast, err := New(lat.Clone(), w, tau, rng.New(seed).Split(2))
	if err != nil {
		t.Fatalf("fast New: %v", err)
	}
	return ref, fast
}

// TestConstructionMatchesReference verifies the initial bookkeeping —
// counts, classification, flippable order — agrees with the reference.
func TestConstructionMatchesReference(t *testing.T) {
	ref, fast := newPair(t, 48, 3, 0.45, 0.5, 7)
	if err := fast.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got, want := fast.FlippableCount(), ref.FlippableCount(); got != want {
		t.Fatalf("FlippableCount = %d, want %d", got, want)
	}
	if got, want := fast.UnhappyCount(), ref.UnhappyCount(); got != want {
		t.Fatalf("UnhappyCount = %d, want %d", got, want)
	}
	if got, want := fast.Phi(), ref.Phi(); got != want {
		t.Fatalf("Phi = %d, want %d", got, want)
	}
	for i := 0; i < 48*48; i++ {
		if got, want := fast.SameCount(i), ref.SameCount(i); got != want {
			t.Fatalf("SameCount(%d) = %d, want %d", i, got, want)
		}
	}
}

// TestLockstepWithReference steps both engines together and demands
// identical flip sites, clocks, and periodic invariant validity, across
// parameter corners including a torus-spanning window (2w+1 == n) and
// the super-unhappy regime tau > 1/2.
func TestLockstepWithReference(t *testing.T) {
	cases := []struct {
		n, w int
		tau  float64
		p    float64
	}{
		{24, 1, 0.45, 0.5},
		{24, 2, 0.42, 0.5},
		{32, 3, 0.30, 0.5},
		{21, 10, 0.45, 0.5}, // 2w+1 == n: the band wraps onto every column
		{24, 2, 0.70, 0.5},  // super-unhappy regime
		{24, 2, 0.05, 0.5},  // tau near 0
		{24, 2, 0.98, 0.5},  // tau near 1
		{24, 2, 0.45, 0.9},  // skewed density
		{5, 2, 0.45, 0.5},   // tiny torus, sub-word rows
	}
	for _, tc := range cases {
		ref, fast := newPair(t, tc.n, tc.w, tc.tau, tc.p, uint64(tc.n*1000+tc.w))
		for step := 0; ; step++ {
			rs, rok := ref.Step()
			fs, fok := fast.Step()
			if rok != fok {
				t.Fatalf("%+v step %d: ok %v vs %v", tc, step, rok, fok)
			}
			if !rok {
				break
			}
			if rs != fs {
				t.Fatalf("%+v step %d: flipped site %d vs %d", tc, step, fs, rs)
			}
			if ref.Time() != fast.Time() {
				t.Fatalf("%+v step %d: time %v vs %v", tc, step, fast.Time(), ref.Time())
			}
			if step%64 == 0 {
				if err := fast.CheckInvariants(); err != nil {
					t.Fatalf("%+v step %d: %v", tc, step, err)
				}
				if !ref.Lattice().Equal(fast.Lattice()) {
					t.Fatalf("%+v step %d: lattices diverged", tc, step)
				}
			}
		}
		if err := fast.CheckInvariants(); err != nil {
			t.Fatalf("%+v fixated: %v", tc, err)
		}
		if !ref.Lattice().Equal(fast.Lattice()) {
			t.Fatalf("%+v: fixated lattices diverged", tc)
		}
		if ref.Flips() != fast.Flips() || ref.Phi() != fast.Phi() {
			t.Fatalf("%+v: flips/Phi diverged: %d/%d vs %d/%d",
				tc, fast.Flips(), fast.Phi(), ref.Flips(), ref.Phi())
		}
	}
}

// scenarioCase is one point of the scenario test grid.
type scenarioCase struct {
	n, w   int
	tau, p float64
	rho    float64
	open   bool
	dist   string
}

// scenarioCases spans every scenario axis and their combinations:
// open boundaries, vacancy fractions, per-site intolerance
// distributions, the super-unhappy regime, and a torus-spanning band.
var scenarioCases = []scenarioCase{
	{n: 32, w: 2, tau: 0.42, p: 0.5, open: true},
	{n: 24, w: 3, tau: 0.45, p: 0.5, rho: 0.1},
	{n: 24, w: 2, tau: 0.42, p: 0.5, rho: 0.05, open: true},
	{n: 24, w: 2, tau: 0.42, p: 0.5, dist: "mix:0.35,0.45:0.5"},
	{n: 24, w: 2, tau: 0.42, p: 0.5, rho: 0.3, open: true, dist: "uniform:0.35:0.5"},
	{n: 24, w: 2, tau: 0.70, p: 0.5, rho: 0.1, open: true},
	{n: 21, w: 10, tau: 0.45, p: 0.5, rho: 0.1},
	{n: 21, w: 10, tau: 0.45, p: 0.5, open: true},
}

// newScenarioPair builds a reference and a fast engine over independent
// copies of the same scenario lattice and tau field.
func newScenarioPair(t *testing.T, c scenarioCase, seed uint64) (*dynamics.Process, *Process) {
	t.Helper()
	lat := grid.RandomScenario(c.n, c.p, c.rho, rng.New(seed).Split(1))
	dist, err := topology.ParseTauDist(c.dist)
	if err != nil {
		t.Fatal(err)
	}
	sc := dynamics.Scenario{Open: c.open, Taus: dist.SampleField(lat.Sites(), c.tau, rng.New(seed).Split(3))}
	ref, err := dynamics.NewScenario(lat.Clone(), c.w, c.tau, sc, rng.New(seed).Split(2))
	if err != nil {
		t.Fatalf("reference NewScenario: %v", err)
	}
	fast, err := NewScenario(lat.Clone(), c.w, c.tau, sc, rng.New(seed).Split(2))
	if err != nil {
		t.Fatalf("fast NewScenario: %v", err)
	}
	return ref, fast
}

// TestScenarioLockstepWithReference steps the scenario engines in
// lockstep across every scenario axis, demanding identical flip sites,
// clocks, and periodically valid invariants.
func TestScenarioLockstepWithReference(t *testing.T) {
	for _, tc := range scenarioCases {
		ref, fast := newScenarioPair(t, tc, uint64(tc.n*1000+tc.w))
		if got, want := fast.FlippableCount(), ref.FlippableCount(); got != want {
			t.Fatalf("%+v: initial FlippableCount = %d, want %d", tc, got, want)
		}
		if got, want := fast.UnhappyCount(), ref.UnhappyCount(); got != want {
			t.Fatalf("%+v: initial UnhappyCount = %d, want %d", tc, got, want)
		}
		for step := 0; ; step++ {
			rs, rok := ref.Step()
			fs, fok := fast.Step()
			if rok != fok {
				t.Fatalf("%+v step %d: ok %v vs %v", tc, step, rok, fok)
			}
			if !rok {
				break
			}
			if rs != fs {
				t.Fatalf("%+v step %d: flipped site %d vs %d", tc, step, fs, rs)
			}
			if ref.Time() != fast.Time() {
				t.Fatalf("%+v step %d: time %v vs %v", tc, step, fast.Time(), ref.Time())
			}
			if step%64 == 0 {
				if err := fast.CheckInvariants(); err != nil {
					t.Fatalf("%+v step %d: %v", tc, step, err)
				}
				if !ref.Lattice().Equal(fast.Lattice()) {
					t.Fatalf("%+v step %d: lattices diverged", tc, step)
				}
			}
		}
		if err := fast.CheckInvariants(); err != nil {
			t.Fatalf("%+v fixated: %v", tc, err)
		}
		if !ref.Lattice().Equal(fast.Lattice()) {
			t.Fatalf("%+v: fixated lattices diverged", tc)
		}
		if ref.Flips() != fast.Flips() || ref.Phi() != fast.Phi() {
			t.Fatalf("%+v: flips/Phi diverged: %d/%d vs %d/%d",
				tc, fast.Flips(), fast.Phi(), ref.Flips(), ref.Phi())
		}
		if ref.HappyFraction() != fast.HappyFraction() {
			t.Fatalf("%+v: happy fraction %v vs %v", tc, fast.HappyFraction(), ref.HappyFraction())
		}
	}
}

// TestScenarioForceFlipMatchesReference drives the scenario engines
// through arbitrary forced flips on occupied sites and compares
// bookkeeping.
func TestScenarioForceFlipMatchesReference(t *testing.T) {
	tc := scenarioCase{n: 20, w: 2, tau: 0.45, p: 0.5, rho: 0.1, open: true, dist: "mix:0.35,0.45:0.5"}
	ref, fast := newScenarioPair(t, tc, 3)
	pick := rng.New(99)
	for k := 0; k < 400; k++ {
		i := pick.Intn(20 * 20)
		if !ref.Lattice().OccupiedAt(i) {
			continue
		}
		ref.ForceFlip(i)
		fast.ForceFlip(i)
	}
	if err := fast.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if !ref.Lattice().Equal(fast.Lattice()) {
		t.Fatal("lattices diverged under forced flips")
	}
	if got, want := fast.FlippableCount(), ref.FlippableCount(); got != want {
		t.Fatalf("FlippableCount = %d, want %d", got, want)
	}
	if got, want := fast.UnhappyCount(), ref.UnhappyCount(); got != want {
		t.Fatalf("UnhappyCount = %d, want %d", got, want)
	}
}

// TestForceFlipMatchesReference drives both engines through arbitrary
// forced flips (rule-violating transitions) and compares bookkeeping.
func TestForceFlipMatchesReference(t *testing.T) {
	ref, fast := newPair(t, 20, 2, 0.45, 0.5, 3)
	pick := rng.New(99)
	for k := 0; k < 400; k++ {
		i := pick.Intn(20 * 20)
		ref.ForceFlip(i)
		fast.ForceFlip(i)
	}
	if err := fast.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if !ref.Lattice().Equal(fast.Lattice()) {
		t.Fatal("lattices diverged under forced flips")
	}
	if got, want := fast.FlippableCount(), ref.FlippableCount(); got != want {
		t.Fatalf("FlippableCount = %d, want %d", got, want)
	}
	if got, want := fast.UnhappyCount(), ref.UnhappyCount(); got != want {
		t.Fatalf("UnhappyCount = %d, want %d", got, want)
	}
}

// TestValidation mirrors the reference constructor's rejections and the
// fast engine's capacity limit.
func TestValidation(t *testing.T) {
	lat := grid.New(9, grid.Minus)
	src := rng.New(1)
	if _, err := New(lat, 0, 0.4, src); err == nil {
		t.Error("w = 0 accepted")
	}
	if _, err := New(lat, 5, 0.4, src); err == nil {
		t.Error("2w+1 > n accepted")
	}
	if _, err := New(lat, 2, -0.1, src); err == nil {
		t.Error("tau < 0 accepted")
	}
	if _, err := New(lat, 2, 1.1, src); err == nil {
		t.Error("tau > 1 accepted")
	}
	if _, err := New(lat, 2, 0.4, nil); err == nil {
		t.Error("nil source accepted")
	}
	big := grid.New(301, grid.Minus)
	if _, err := New(big, 150, 0.4, rng.New(1)); !errors.Is(err, ErrNeighborhoodTooLarge) {
		t.Errorf("neighborhood beyond lane capacity: got %v, want ErrNeighborhoodTooLarge", err)
	}
	if Fits(90) != true || Fits(91) != false || Fits(0) != false {
		t.Error("Fits boundary wrong")
	}
	if _, err := NewScenario(lat, 2, 0.4, dynamics.Scenario{Taus: []float64{0.5}}, src); err == nil {
		t.Error("short per-site tau field accepted")
	}
	if _, err := NewScenario(lat, 2, 0.4, dynamics.Scenario{Taus: make([]float64, 81)}, src); err != nil {
		t.Errorf("valid per-site tau field rejected: %v", err)
	}
}
