package fastglauber

import (
	"errors"

	"gridseg/internal/dynamics"
	"gridseg/internal/grid"
	"gridseg/internal/rng"
	"gridseg/internal/sampleset"
	"gridseg/internal/theory"
)

// Move is the bit-packed fast path of the relocation dynamic
// (dynamics.Move). It is observationally identical to the reference
// engine: same sampler ordering, same random-source consumption, hence
// bit-identical relocation sequences, spin arrays, and observables for
// any seed — the differential harness in internal/difftest pins the
// equivalence.
//
// A relocation is a vacate+occupy pair of packed single-bit updates
// against the spin and occupancy planes. Both maintained lane arrays —
// the +1 window counts and the occupied window counts (occC, the
// relocation replacement for the flip path's int32 occ/threshold
// arrays) — are adjusted with the same masked SWAR word additions the
// flip engine uses for its column band; the plus band only when the
// mover is a +1 agent. What remains scalar is reclassification: every
// site of both windows is re-read against the settled lanes, in the
// reference engine's row-major window-visit order, with thresholds
// looked up in the process's per-occupancy table (or computed per
// site under heterogeneous intolerance) rather than stored. The
// static boundary tables of the flip scan are never built (see
// newScenario's relocating mode).
type Move struct {
	p *Process
	// Indexed samplers over the unhappy agents (both types) and the
	// vacant sites, identical in ordering to the reference engine's
	// (see internal/sampleset).
	unhappySet *sampleset.Set
	vacantSet  *sampleset.Set
	moves      int64
	attempts   int64
}

// The fast relocation engine satisfies the shared move contract.
var _ dynamics.MoveEngine = (*Move)(nil)

// NewMove creates a fast relocation process over the lattice, which
// must contain at least one vacant site, with the same semantics and
// validation as the reference dynamics.NewMove. The lattice is mutated
// in place and stays bit-identical to the packed state after every
// relocation.
func NewMove(lat *grid.Lattice, w int, tauTilde float64, sc dynamics.Scenario, src *rng.Source) (*Move, error) {
	if !lat.HasVacancies() {
		return nil, errors.New("fastglauber: the move dynamic needs vacant sites (rho > 0)")
	}
	p, err := newScenario(lat, w, tauTilde, sc, src, true)
	if err != nil {
		return nil, err
	}
	m := &Move{
		p:          p,
		unhappySet: sampleset.New(lat.Sites()),
		vacantSet:  sampleset.New(lat.Sites()),
	}
	for i := 0; i < lat.Sites(); i++ {
		m.refreshSets(i)
	}
	return m, nil
}

// Process returns the underlying count-tracking process (read-only use).
func (m *Move) Process() *Process { return m.p }

// Engine returns the underlying process as the shared engine contract
// (the accessor of MoveEngine).
func (m *Move) Engine() dynamics.Engine { return m.p }

// Moves returns the number of successful relocations so far.
func (m *Move) Moves() int64 { return m.moves }

// Attempts returns the number of attempted relocations so far.
func (m *Move) Attempts() int64 { return m.attempts }

// Counts returns the numbers of unhappy agents and vacant sites.
func (m *Move) Counts() (unhappy, vacant int) {
	return m.unhappySet.Len(), m.vacantSet.Len()
}

// threshFor returns ceil(tau_i * occ): the process's memoized
// per-occupancy table when there is one, the per-site ceil otherwise.
// It agrees exactly with the reference engine's
// theory.Threshold(tauAt(i), occ).
func (m *Move) threshFor(i, occ int) int32 {
	if m.p.threshTab != nil {
		return m.p.threshTab[occ]
	}
	return int32(theory.Threshold(m.p.tauAt(i), occ))
}

// refreshSets updates site i's membership in the unhappy-agent and
// vacant-site samples from the maintained bitsets.
func (m *Move) refreshSets(i int) {
	occupied := m.p.bits.OccupiedBit(i)
	unhappy := m.p.unhappy[i>>6]&(1<<uint(i&63)) != 0
	m.unhappySet.Update(i, occupied && unhappy)
	m.vacantSet.Update(i, !occupied)
}

// bandSegment applies the ±1 lane update to columns [a, b] of row y
// (no wrap within a segment) of the given lane array — the flip
// engine's SWAR add without the boundary scan; reclassification
// happens in the scalar pass instead. lanes is counts (plus counts)
// or occC (occupied counts): relocations maintain both with the same
// masked word additions.
func (m *Move) bandSegment(lanes []uint64, y, a, b int, add bool) {
	base := y * m.p.cpr
	w0, w1 := a>>2, b>>2
	for k := w0; k <= w1; k++ {
		am := uint64(laneOnes)
		if k == w0 || k == w1 {
			lo, hi := 0, 3
			if k == w0 {
				lo = a & 3
			}
			if k == w1 {
				hi = b & 3
			}
			am = addMask[lo][hi]
		}
		if add {
			lanes[base+k] += am
		} else {
			lanes[base+k] -= am
		}
	}
}

// addBand applies the ±1 lane update over the window of site i,
// wrapped on the torus, clamped at the edges under the open boundary —
// the same band geometry as the flip engine's applyFlip.
func (m *Move) addBand(lanes []uint64, i int, add bool) {
	p := m.p
	n, w := p.n, p.w
	x0, y0 := i%n, i/n
	if p.open {
		xlo, xhi := x0-w, x0+w
		if xlo < 0 {
			xlo = 0
		}
		if xhi > n-1 {
			xhi = n - 1
		}
		for dy := -w; dy <= w; dy++ {
			y := y0 + dy
			if y < 0 || y >= n {
				continue
			}
			m.bandSegment(lanes, y, xlo, xhi, add)
		}
		return
	}
	xlo := x0 - w
	if xlo < 0 {
		xlo += n
	}
	width := 2*w + 1
	for dy := -w; dy <= w; dy++ {
		y := y0 + dy
		if y < 0 {
			y += n
		} else if y >= n {
			y -= n
		}
		if xlo+width <= n {
			m.bandSegment(lanes, y, xlo, xlo+width-1, add)
		} else {
			m.bandSegment(lanes, y, xlo, n-1, add)
			m.bandSegment(lanes, y, 0, xlo+width-1-n, add)
		}
	}
}

// updateWindow walks the window of site i in the reference engine's
// row-major visit order and reclassifies every site against the
// settled plus-count and occupancy lanes (both already band-updated by
// the caller). Each site's final state depends only on its own settled
// values, so the bands-then-scalar split lands on exactly the state
// the reference engine's interleaved per-site sweep produces.
//
// With sets true (the fused path, taken when the two relocation
// windows are disjoint) the pass also replays the sampler mutations of
// the reference engine's post-move sweep over this window. The replay
// is sparse but bit-identical: a sampler Update whose membership value
// is unchanged leaves the set untouched, so only the real transitions
// matter — the unhappy sampler moves exactly when a site's
// classification toggles (occupancy is constant everywhere but the
// center), and the vacant sampler moves only at the center i, the
// relocation endpoint itself. Both fire at the same point of the same
// row-major order as the reference sweep.
func (m *Move) updateWindow(i int, sets bool) {
	p := m.p
	n, w := p.n, p.w
	tab := p.threshTab
	x0, y0 := i%n, i/n
	// The window's column range as one or two contiguous x segments
	// (clamped under the open boundary, wrap-split on the torus), in
	// the reference engine's ascending-dx visit order — so the inner
	// loops run branchlessly over runs of sites.
	var segs [2][2]int
	nseg := 1
	if p.open {
		xlo, xhi := x0-w, x0+w
		if xlo < 0 {
			xlo = 0
		}
		if xhi > n-1 {
			xhi = n - 1
		}
		segs[0] = [2]int{xlo, xhi}
	} else {
		xlo := x0 - w
		if xlo < 0 {
			xlo += n
		}
		width := 2*w + 1
		if xlo+width <= n {
			segs[0] = [2]int{xlo, xlo + width - 1}
		} else {
			segs[0] = [2]int{xlo, n - 1}
			segs[1] = [2]int{0, xlo + width - 1 - n}
			nseg = 2
		}
	}
	for dy := -w; dy <= w; dy++ {
		y := y0 + dy
		if y < 0 {
			if p.open {
				continue
			}
			y += n
		} else if y >= n {
			if p.open {
				continue
			}
			y -= n
		}
		row := y * n
		cbase := y * p.cpr
		wrow := y * p.bits.WordsPerRow()
		for s := 0; s < nseg; s++ {
			a, b := segs[s][0], segs[s][1]
			if tab != nil {
				m.classifyPacked(row, cbase, wrow, a, b, i, sets)
			} else {
				m.classifyScalar(row, cbase, wrow, a, b, i, sets)
			}
		}
	}
}

// nibbleMask widens a 4-bit lane-selection nibble (one bit per packed
// 16-bit lane) to full lane masks, trading four data-dependent shifts
// and branches for one table load.
var nibbleMask [16]uint64

func init() {
	for n := range nibbleMask {
		for l := 0; l < 4; l++ {
			if n>>l&1 != 0 {
				nibbleMask[n] |= 0xffff << (16 * l)
			}
		}
	}
}

// classifyPacked reclassifies one contiguous x-run [a,b] of window row
// y (row = y*n, cbase/wrow its bases in the lane and bit planes) under
// a global intolerance. All four lanes of each packed count word are
// classified at once, branch-free: the spin and occupancy nibbles
// widen to full lane masks via nibbleMask, same-type counts come from
// one masked select between the plus and minus lane words, and the
// per-lane "same < threshold" verdict lands in bit 15 of each lane by
// biased subtraction. Random spins mispredict a scalar per-site branch
// half the time; here the only branch left is the almost-always-false
// toggle test in the commit loop.
func (m *Move) classifyPacked(row, cbase, wrow, a, b, center int, sets bool) {
	p := m.p
	tab := p.threshTab
	for k := a >> 2; k <= b>>2; k++ {
		x4 := k * 4
		ow := p.occC[cbase+k]
		cw := p.counts[cbase+k]
		bb := uint(x4 & 63)
		spinNib := p.bits.SpinWord(wrow+x4>>6) >> bb & 0xf
		occNib := p.bits.OccupiedWord(wrow+x4>>6) >> bb & 0xf
		sm := nibbleMask[spinNib]
		sameW := cw&sm | (ow-cw)&^sm
		thW := uint64(uint16(tab[ow&0xffff])) |
			uint64(uint16(tab[ow>>16&0xffff]))<<16 |
			uint64(uint16(tab[ow>>32&0xffff]))<<32 |
			uint64(uint16(tab[ow>>48]))<<48
		// Per lane: bit 15 of (0x8000 + same - th) is set iff
		// same >= th, and both operands stay below 2^15, so no
		// carry crosses a lane boundary.
		ge := (sameW | laneHigh) - thW
		u16 := ^ge & laneHigh & nibbleMask[occNib]
		nib := (u16>>15 | u16>>30 | u16>>45 | u16>>60) & 0xf
		lo, hi := x4, x4+3
		if lo < a {
			lo = a
		}
		if hi > b {
			hi = b
		}
		for x := lo; x <= hi; x++ {
			j := row + x
			unhappy := nib>>uint(x&3)&1 != 0
			wi, bm := j>>6, uint64(1)<<uint(j&63)
			if (p.unhappy[wi]&bm != 0) != unhappy {
				p.unhappy[wi] ^= bm
				if unhappy {
					p.nUnhappy++
				} else {
					p.nUnhappy--
				}
				if sets {
					m.unhappySet.Update(j, unhappy)
				}
			}
			if sets && j == center {
				m.vacantSet.Update(j, occNib>>uint(x&3)&1 == 0)
			}
		}
	}
}

// classifyScalar is the per-site fallback for heterogeneous
// intolerance, where each site's threshold is its own ceil and the
// packed compare has no shared table to draw from.
func (m *Move) classifyScalar(row, cbase, wrow, a, b, center int, sets bool) {
	p := m.p
	for x := a; x <= b; {
		// One spin and one occupancy word cover the next 64 lanes of
		// the segment; within them, each plus-count and occupied-count
		// word covers 4 lanes and is loaded once.
		k := wrow + x>>6
		spinW := p.bits.SpinWord(k)
		occW := p.bits.OccupiedWord(k)
		lim := x | 63
		if lim > b {
			lim = b
		}
		for x <= lim {
			ci := cbase + x>>2
			ow := p.occC[ci]
			cw := p.counts[ci]
			lim4 := x | 3
			if lim4 > lim {
				lim4 = lim
			}
			for ; x <= lim4; x++ {
				j := row + x
				bit := uint(x & 63)
				occupied := occW>>bit&1 != 0
				var unhappy bool
				if occupied {
					sh := uint(16 * (x & 3))
					occ := int32(ow >> sh & 0xffff)
					th := int32(theory.Threshold(p.tauOf[j], int(occ)))
					c := int32(cw >> sh & 0xffff)
					if spinW>>bit&1 != 0 {
						unhappy = c < th
					} else {
						unhappy = c > occ-th
					}
				}
				wi, bm := j>>6, uint64(1)<<uint(j&63)
				if (p.unhappy[wi]&bm != 0) != unhappy {
					p.unhappy[wi] ^= bm
					if unhappy {
						p.nUnhappy++
					} else {
						p.nUnhappy--
					}
					if sets {
						m.unhappySet.Update(j, unhappy)
					}
				}
				if sets && j == center {
					m.vacantSet.Update(j, !occupied)
				}
			}
		}
	}
}

// remove vacates the occupied site u: packed spin and occupancy bits,
// the reference mirror, the occupied-count band, the plus-count band
// (only when the departing agent is +1), and the reclassification of
// every window site (fused with sampler replay when sets is true).
func (m *Move) remove(u int, sets bool) grid.Spin {
	p := m.p
	s := p.lat.SpinAt(u)
	if s == grid.None {
		panic("fastglauber: remove on vacant site")
	}
	plus := s == grid.Plus
	p.bits.SetOccupiedBit(u, false)
	p.bits.SetSpinBit(u, false)
	p.lat.SetAt(u, grid.None)
	p.agents--
	if plus {
		m.addBand(p.counts, u, false)
	}
	m.addBand(p.occC, u, false)
	m.updateWindow(u, sets)
	return s
}

// place puts an agent of the given type on the vacant site v, the
// inverse of remove.
func (m *Move) place(v int, s grid.Spin, sets bool) {
	p := m.p
	if p.bits.OccupiedBit(v) || s == grid.None {
		panic("fastglauber: place on occupied site or with vacant spin")
	}
	plus := s == grid.Plus
	p.bits.SetOccupiedBit(v, true)
	p.bits.SetSpinBit(v, plus)
	p.lat.SetAt(v, s)
	p.agents++
	if plus {
		m.addBand(p.counts, v, true)
	}
	m.addBand(p.occC, v, true)
	m.updateWindow(v, sets)
}

// sweepSets replays sampler maintenance over the window of site i in
// the reference engine's row-major visit order — the ordering of these
// Update calls is what keeps the two engines' samplers bit-identical.
func (m *Move) sweepSets(i int) {
	p := m.p
	n, w := p.n, p.w
	x0, y0 := i%n, i/n
	for dy := -w; dy <= w; dy++ {
		y := y0 + dy
		if y < 0 {
			if p.open {
				continue
			}
			y += n
		} else if y >= n {
			if p.open {
				continue
			}
			y -= n
		}
		row := y * n
		for dx := -w; dx <= w; dx++ {
			x := x0 + dx
			if x < 0 {
				if p.open {
					continue
				}
				x += n
			} else if x >= n {
				if p.open {
					continue
				}
				x -= n
			}
			m.refreshSets(row + x)
		}
	}
}

// windowsOverlap reports whether N(u) and N(v) share a site: the
// boundary-aware Chebyshev distance is at most 2w.
func (m *Move) windowsOverlap(u, v int) bool {
	p := m.p
	n := p.n
	dx := u%n - v%n
	if dx < 0 {
		dx = -dx
	}
	dy := u/n - v/n
	if dy < 0 {
		dy = -dy
	}
	if !p.open {
		if n-dx < dx {
			dx = n - dx
		}
		if n-dy < dy {
			dy = n - dy
		}
	}
	return dx <= 2*p.w && dy <= 2*p.w
}

// relocate moves the agent at u to the vacant site v, refreshing both
// sample sets over the two affected windows. When the windows are
// disjoint — the common case on large grids — the sampler replay fuses
// into the reclassification passes: a window(u) site's membership
// cannot depend on the later placement at v, so updating it during the
// vacate pass produces the exact mutation sequence of the reference
// engine's two post-move sweeps. Overlapping windows fall back to
// separate full sweeps after both passes settle.
func (m *Move) relocate(u, v int) {
	fused := !m.windowsOverlap(u, v)
	s := m.remove(u, fused)
	m.place(v, s, fused)
	if !fused {
		m.sweepSets(u)
		m.sweepSets(v)
	}
}

// inWindow reports whether site j lies in N(i), respecting the
// boundary, mirroring the reference engine's test.
func (p *Process) inWindow(i, j int) bool {
	n, w := p.n, p.w
	dx := i%n - j%n
	if dx < 0 {
		dx = -dx
	}
	dy := i/n - j/n
	if dy < 0 {
		dy = -dy
	}
	if !p.open {
		if n-dx < dx {
			dx = n - dx
		}
		if n-dy < dy {
			dy = n - dy
		}
	}
	return dx <= w && dy <= w
}

// wouldBeHappy reports whether the agent currently at u (plusMover =
// +1 type) would be happy at the vacant site v after its departure,
// computed from the maintained counts in O(1) with the exact integer
// arithmetic of the reference engine.
func (m *Move) wouldBeHappy(u, v int, plusMover bool) bool {
	p := m.p
	occ := p.occAt(v)
	plus := p.count(v)
	if p.inWindow(v, u) {
		occ--
		if plusMover {
			plus--
		}
	}
	occ++ // the mover itself joins N(v)
	same := occ - plus
	if plusMover {
		same = plus + 1
	}
	return same >= int(m.threshFor(v, occ))
}

// StepAttempt samples one unhappy agent and one vacant site uniformly
// at random — consuming the random source exactly like the reference
// engine — and relocates the agent iff it would be happy at the new
// location. It returns moved=false with done=true when no unhappy
// agent remains.
func (m *Move) StepAttempt() (moved, done bool) {
	if m.unhappySet.Len() == 0 {
		return false, true
	}
	m.attempts++
	u := int(m.unhappySet.Sample(m.p.src))
	v := int(m.vacantSet.Sample(m.p.src))
	if !m.wouldBeHappy(u, v, m.p.bits.Bit(u)) {
		return false, false
	}
	m.relocate(u, v)
	m.moves++
	return true, false
}

// Run performs relocation attempts until no unhappy agent remains,
// until maxAttempts have been made, or until failStreak consecutive
// attempts fail, mirroring the reference engine's Run.
func (m *Move) Run(maxAttempts, failStreak int64) (performed int64, done bool) {
	if maxAttempts <= 0 {
		return 0, false
	}
	var streak int64
	for a := int64(0); a < maxAttempts; a++ {
		moved, noUnhappy := m.StepAttempt()
		if noUnhappy {
			return performed, true
		}
		if moved {
			performed++
			streak = 0
		} else {
			streak++
			if failStreak > 0 && streak >= failStreak {
				return performed, false
			}
		}
	}
	return performed, false
}

// CheckInvariants verifies the sample sets against brute force in
// addition to the underlying packed-process invariants.
func (m *Move) CheckInvariants() error {
	if err := m.p.CheckInvariants(); err != nil {
		return err
	}
	if err := m.unhappySet.CheckInvariants("unhappy", func(i int) bool {
		return m.p.bits.OccupiedBit(i) && !m.p.Happy(i)
	}); err != nil {
		return err
	}
	return m.vacantSet.CheckInvariants("vacant", func(i int) bool {
		return !m.p.bits.OccupiedBit(i)
	})
}
