package fastglauber

import (
	"errors"
	"fmt"

	"gridseg/internal/rng"
	"gridseg/internal/sampleset"
)

// This file implements strip shards: views of a single Process that
// partition its lattice into horizontal strips so non-interacting
// strips can run Glauber updates concurrently (internal/dynamics/pareng
// orchestrates the protocols). Each shard is a shallow copy of the
// parent Process sharing every backing array — packed spins, the count
// lanes, the unhappy bitset, the scenario tables, and the reference
// mirror lattice — with its own flippable sampler (indexed relative to
// the strip base), its own clock, flip counter, and unhappy tally.
//
// Safety rests on layout, not locks: spin words and count words are
// row-aligned (they never span rows), flips happen only in owned rows,
// and a flip's count writes reach at most w rows past the strip. The
// protocols keep concurrently active strips at least one full strip
// apart, so their write sets live in disjoint rows — and with strip
// heights of at least max(2w, ceil(64/n)) rows, in disjoint words of
// the flat unhappy bitset as well. NewShards enforces those minima.

// ShardGroup is a strip decomposition of one Process. Construct with
// NewShards; after construction the parent must no longer be stepped
// (its sampler and unhappy tally go stale as the shards evolve), but
// its read-only queries over the shared arrays (counts, spins, Phi)
// remain valid at any quiescent point.
type ShardGroup struct {
	parent *Process
	shards []*Process
	bounds []int   // strip k owns rows [bounds[k], bounds[k+1])
	rowOf  []int32 // row -> owning strip index
	// free selects the foreign-refresh routing in refreshSite: apply to
	// the owning shard (free-running protocol, caller holds the locks)
	// instead of deferring to the deterministic merge barrier.
	free bool
}

// NewShards splits p into the strips delimited by bounds (ascending row
// cuts from 0 to n inclusive) and returns the shard group. The process
// must be a plain Glauber engine (not relocating, not change-tracked),
// every strip must be at least max(2w, ceil(64/n)) rows tall so that
// strips two apart never write the same memory word, and there must be
// at least two strips.
func NewShards(p *Process, bounds []int, free bool) (*ShardGroup, error) {
	if p.relocating || p.track {
		return nil, errors.New("fastglauber: shards require a plain Glauber process")
	}
	if p.grp != nil {
		return nil, errors.New("fastglauber: process is already sharded")
	}
	if len(bounds) < 3 {
		return nil, errors.New("fastglauber: sharding needs at least two strips")
	}
	if bounds[0] != 0 || bounds[len(bounds)-1] != p.n {
		return nil, fmt.Errorf("fastglauber: strip bounds must run from 0 to %d", p.n)
	}
	minH := 2 * p.w
	if need := (63 + p.n) / p.n; need > minH {
		minH = need
	}
	for k := 0; k+1 < len(bounds); k++ {
		if h := bounds[k+1] - bounds[k]; h < minH {
			return nil, fmt.Errorf("fastglauber: strip %d is %d rows tall, need >= %d (2w and one bitset word)", k, h, minH)
		}
	}
	g := &ShardGroup{parent: p, bounds: append([]int(nil), bounds...), free: free, rowOf: make([]int32, p.n)}
	for k := 0; k+1 < len(bounds); k++ {
		for y := bounds[k]; y < bounds[k+1]; y++ {
			g.rowOf[y] = int32(k)
		}
		s := new(Process)
		*s = *p
		s.ownLo, s.ownHi = bounds[k]*p.n, bounds[k+1]*p.n
		s.sampBase = s.ownLo
		s.flippable = sampleset.New(s.ownHi - s.ownLo)
		s.src = nil
		s.time, s.flips = 0, 0
		s.nUnhappy = 0
		s.flipSite = -1
		s.grp = g
		for j := s.ownLo; j < s.ownHi; j++ {
			if p.unhappy[j>>6]&(1<<uint(j&63)) != 0 {
				s.nUnhappy++
			}
			s.flippable.Update(j-s.sampBase, p.flippable.Contains(j))
		}
		g.shards = append(g.shards, s)
	}
	return g, nil
}

// Strips returns the number of strips.
func (g *ShardGroup) Strips() int { return len(g.shards) }

// Shard returns the k-th strip's process view.
func (g *ShardGroup) Shard(k int) *Process { return g.shards[k] }

// owner returns the shard owning site j.
func (g *ShardGroup) owner(j int) *Process { return g.shards[g.rowOf[j/g.parent.n]] }

// FlippableCount returns the total number of admissible flips across
// all strips. Only meaningful at a quiescent point of the protocols.
func (g *ShardGroup) FlippableCount() int {
	total := 0
	for _, s := range g.shards {
		total += s.flippable.Len()
	}
	return total
}

// UnhappyCount returns the total number of unhappy agents.
func (g *ShardGroup) UnhappyCount() int {
	total := 0
	for _, s := range g.shards {
		total += s.nUnhappy
	}
	return total
}

// Flips returns the total number of flips performed across all strips.
func (g *ShardGroup) Flips() int64 {
	var total int64
	for _, s := range g.shards {
		total += s.flips
	}
	return total
}

// MaxTime returns the largest strip-local clock (the free-running
// protocol's elapsed-time estimate).
func (g *ShardGroup) MaxTime() float64 {
	t := 0.0
	for _, s := range g.shards {
		if s.time > t {
			t = s.time
		}
	}
	return t
}

// RefreshRows re-derives the classification of every site in rows
// [lo, hi) from the shared counts, in ascending site order, updating
// each owning shard's unhappy tally and sampler. This is the
// deterministic protocol's merge: a phase skips refreshes of foreign
// sites, and the barrier replays them here in a canonical order so the
// outcome is independent of worker count.
func (g *ShardGroup) RefreshRows(lo, hi int) {
	n := g.parent.n
	for y := lo; y < hi; y++ {
		s := g.shards[g.rowOf[y]]
		for j := y * n; j < (y+1)*n; j++ {
			s.refreshSite(j, s.count(j))
		}
	}
}

// RunHorizon advances the shard's local kinetic Monte Carlo clock from
// zero until the next event would land past the horizon, drawing
// exclusively from src. It reports the events performed, the local
// clock value of the last event (0 when none), and whether any flip
// landed within w rows of the strip's low/high edge (so the caller
// knows which neighbor bands need the merge refresh). The per-event
// randomness is one ExpRate draw and one sampler draw, exactly like
// Step, so a one-strip shard replays the sequential engine's flip
// sequence for the same source.
func (p *Process) RunHorizon(src *rng.Source, horizon float64) (events int64, last float64, dirtyLo, dirtyHi bool) {
	n, w := p.n, p.w
	loRow, hiRow := p.ownLo/n, p.ownHi/n
	t := 0.0
	for {
		k := p.flippable.Len()
		if k == 0 {
			return events, last, dirtyLo, dirtyHi
		}
		t += src.ExpRate(float64(k))
		if t > horizon {
			return events, last, dirtyLo, dirtyHi
		}
		i := int(p.flippable.Sample(src)) + p.sampBase
		p.applyFlip(i)
		p.flips++
		events++
		last = t
		y := i / n
		if y < loRow+w {
			dirtyLo = true
		}
		if y >= hiRow-w {
			dirtyHi = true
		}
	}
}

// RunBurst performs up to maxEvents local events on the shard's own
// clock, drawing from src, and returns the events performed. The
// free-running protocol calls it with the strip's and both neighbors'
// locks held, so foreign refreshes apply directly to the neighbor
// shards.
func (p *Process) RunBurst(src *rng.Source, maxEvents int) (events int64) {
	for events < int64(maxEvents) {
		k := p.flippable.Len()
		if k == 0 {
			return events
		}
		p.time += src.ExpRate(float64(k))
		i := int(p.flippable.Sample(src)) + p.sampBase
		p.applyFlip(i)
		p.flips++
		events++
	}
	return events
}

// CheckInvariants verifies the shared packed state against brute-force
// recomputation and every shard's sampler and tallies against the
// shared state. Call only at a quiescent point.
func (g *ShardGroup) CheckInvariants() error {
	p := g.parent
	if err := p.bits.EqualLattice(p.lat); err != nil {
		return err
	}
	fresh := p.bits.PlusWindowCounts(p.w, p.open)
	ref := p.lat.PlusWindowCounts(p.w, p.open)
	for i := range ref {
		if ref[i] != fresh[i] {
			return fmt.Errorf("packed window count[%d] = %d, reference recount %d", i, fresh[i], ref[i])
		}
		if got := p.count(i); got != int(fresh[i]) {
			return fmt.Errorf("count lane[%d] = %d, want %d", i, got, fresh[i])
		}
	}
	for k, s := range g.shards {
		unhappyCount := 0
		wantFlippable := make([]bool, s.ownHi-s.ownLo)
		for j := s.ownLo; j < s.ownHi; j++ {
			var unhappy bool
			if p.bits.OccupiedBit(j) {
				same := p.SameCount(j)
				th := p.threshAt(j)
				unhappy = same < th
				wantFlippable[j-s.sampBase] = unhappy && p.occAt(j)-same+1 >= th
			}
			if got := p.unhappy[j>>6]&(1<<uint(j&63)) != 0; got != unhappy {
				return fmt.Errorf("strip %d: unhappy[%d] = %v, want %v", k, j, got, unhappy)
			}
			if unhappy {
				unhappyCount++
			}
		}
		if unhappyCount != s.nUnhappy {
			return fmt.Errorf("strip %d: nUnhappy = %d, want %d", k, s.nUnhappy, unhappyCount)
		}
		name := fmt.Sprintf("strip %d flippable", k)
		if err := s.flippable.CheckInvariants(name, func(i int) bool { return wantFlippable[i] }); err != nil {
			return err
		}
	}
	return nil
}
