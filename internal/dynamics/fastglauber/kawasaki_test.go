package fastglauber

import (
	"testing"

	"gridseg/internal/dynamics"
	"gridseg/internal/grid"
	"gridseg/internal/rng"
	"gridseg/internal/topology"
)

// newKawasakiPair builds a reference and a fast Kawasaki engine over
// independent copies of the same scenario lattice and tau field.
func newKawasakiPair(t *testing.T, c scenarioCase, seed uint64) (*dynamics.Kawasaki, *Kawasaki) {
	t.Helper()
	lat := grid.RandomScenario(c.n, c.p, c.rho, rng.New(seed).Split(1))
	dist, err := topology.ParseTauDist(c.dist)
	if err != nil {
		t.Fatal(err)
	}
	sc := dynamics.Scenario{Open: c.open, Taus: dist.SampleField(lat.Sites(), c.tau, rng.New(seed).Split(3))}
	ref, err := dynamics.NewKawasakiScenario(lat.Clone(), c.w, c.tau, sc, rng.New(seed).Split(2))
	if err != nil {
		t.Fatalf("reference NewKawasakiScenario: %v", err)
	}
	fast, err := NewKawasakiScenario(lat.Clone(), c.w, c.tau, sc, rng.New(seed).Split(2))
	if err != nil {
		t.Fatalf("fast NewKawasakiScenario: %v", err)
	}
	return ref, fast
}

// TestKawasakiLockstepWithReference drives the swap engines through
// identical attempt sequences — the default scenario and every
// scenario axis — demanding identical swap outcomes, set sizes, and
// periodically valid invariants.
func TestKawasakiLockstepWithReference(t *testing.T) {
	cases := append([]scenarioCase{
		{n: 32, w: 1, tau: 0.45, p: 0.5},
		{n: 24, w: 2, tau: 0.45, p: 0.5},
		{n: 24, w: 2, tau: 0.42, p: 0.3},
	}, scenarioCases...)
	for _, tc := range cases {
		ref, fast := newKawasakiPair(t, tc, uint64(tc.n*77+tc.w))
		if rp, rm := ref.UnhappyByType(); true {
			fp, fm := fast.UnhappyByType()
			if rp != fp || rm != fm {
				t.Fatalf("%+v: initial unhappy sets (%d,%d) vs (%d,%d)", tc, fp, fm, rp, rm)
			}
		}
		maxAttempts := 4000
		for a := 0; a < maxAttempts; a++ {
			rs, rdone := ref.StepAttempt()
			fs, fdone := fast.StepAttempt()
			if rs != fs || rdone != fdone {
				t.Fatalf("%+v attempt %d: (swapped,done)=(%v,%v) vs (%v,%v)", tc, a, fs, fdone, rs, rdone)
			}
			if rdone {
				break
			}
			if a%256 == 0 {
				if err := fast.CheckInvariants(); err != nil {
					t.Fatalf("%+v attempt %d: %v", tc, a, err)
				}
				if !ref.Process().Lattice().Equal(fast.Process().Lattice()) {
					t.Fatalf("%+v attempt %d: lattices diverged", tc, a)
				}
			}
		}
		if err := fast.CheckInvariants(); err != nil {
			t.Fatalf("%+v final: %v", tc, err)
		}
		if ref.Swaps() != fast.Swaps() || ref.Attempts() != fast.Attempts() {
			t.Fatalf("%+v: swaps/attempts %d/%d vs %d/%d", tc, fast.Swaps(), fast.Attempts(), ref.Swaps(), ref.Attempts())
		}
		if !ref.Process().Lattice().Equal(fast.Process().Lattice()) {
			t.Fatalf("%+v: final lattices diverged", tc)
		}
		if ref.Process().Phi() != fast.Process().Phi() {
			t.Fatalf("%+v: Phi %d vs %d", tc, fast.Process().Phi(), ref.Process().Phi())
		}
	}
}

// TestKawasakiRunMatchesReference pins the bounded Run loop (attempt
// budget plus failure streak) to the reference engine.
func TestKawasakiRunMatchesReference(t *testing.T) {
	tc := scenarioCase{n: 32, w: 2, tau: 0.45, p: 0.5, rho: 0.05, open: true}
	ref, fast := newKawasakiPair(t, tc, 11)
	n2 := int64(tc.n * tc.n)
	rp, rdone := ref.Run(20*n2, n2)
	fp, fdone := fast.Run(20*n2, n2)
	if rp != fp || rdone != fdone {
		t.Fatalf("Run: (%d,%v) vs (%d,%v)", fp, fdone, rp, rdone)
	}
	if !ref.Process().Lattice().Equal(fast.Process().Lattice()) {
		t.Fatal("lattices diverged after Run")
	}
}
