package fastglauber

import (
	"gridseg/internal/dynamics"
	"gridseg/internal/grid"
	"gridseg/internal/rng"
	"gridseg/internal/sampleset"
)

// Kawasaki is the bit-packed fast path of the swap (closed-system)
// dynamic: a pair of unhappy agents of opposite types exchange
// locations iff the exchange makes both happy. It is observationally
// identical to the reference dynamics.Kawasaki — same per-type
// unhappy-set ordering, same random-source consumption, hence
// bit-identical swap sequences and observables for any seed.
//
// An exchange is two flips, and each flip reuses the fast Process's
// SWAR count update and boundary scan wholesale. The per-type unhappy
// sets ride on the scan for free: the reference engine re-examines
// every window site after a flip, but a site's set membership can only
// change when its unhappy flag toggles (or, for the flipped site, when
// its spin changes), and the scan already identifies exactly those
// sites — in the reference engine's window-visit order — through the
// Process's changed-site tracking. So set maintenance costs a handful
// of scalar updates per flip instead of (2w+1)^2 re-examinations.
type Kawasaki struct {
	p *Process
	// Indexed samplers over the unhappy agents of each type, ordered
	// identically to the reference engine's sets (see
	// internal/sampleset).
	unhappyPlus  *sampleset.Set
	unhappyMinus *sampleset.Set
	swaps        int64
	attempts     int64
}

// NewKawasaki creates a fast Kawasaki process over the lattice with
// horizon w and intolerance tauTilde, mirroring dynamics.NewKawasaki.
// The lattice is mutated in place.
func NewKawasaki(lat *grid.Lattice, w int, tauTilde float64, src *rng.Source) (*Kawasaki, error) {
	return NewKawasakiScenario(lat, w, tauTilde, dynamics.Scenario{}, src)
}

// NewKawasakiScenario creates a fast Kawasaki process under the given
// scenario (open boundaries, per-site tau, vacancies read off the
// lattice), mirroring dynamics.NewKawasakiScenario.
func NewKawasakiScenario(lat *grid.Lattice, w int, tauTilde float64, sc dynamics.Scenario, src *rng.Source) (*Kawasaki, error) {
	p, err := NewScenario(lat, w, tauTilde, sc, src)
	if err != nil {
		return nil, err
	}
	p.track = true
	k := &Kawasaki{
		p:            p,
		unhappyPlus:  sampleset.New(lat.Sites()),
		unhappyMinus: sampleset.New(lat.Sites()),
	}
	for i := 0; i < lat.Sites(); i++ {
		k.refreshSets(i)
	}
	return k, nil
}

// Process returns the underlying count-tracking fast process
// (read-only use).
func (k *Kawasaki) Process() *Process { return k.p }

// Engine returns the underlying process as the shared engine contract
// (the accessor of dynamics.SwapEngine).
func (k *Kawasaki) Engine() dynamics.Engine { return k.p }

// Swaps returns the number of successful swaps so far.
func (k *Kawasaki) Swaps() int64 { return k.swaps }

// Attempts returns the number of attempted swaps so far.
func (k *Kawasaki) Attempts() int64 { return k.attempts }

// UnhappyByType returns the numbers of unhappy +1 and -1 agents.
func (k *Kawasaki) UnhappyByType() (plus, minus int) {
	return k.unhappyPlus.Len(), k.unhappyMinus.Len()
}

// refreshSets updates site i's membership in the per-type unhappy
// sets from the maintained unhappy bitset (zero for vacant sites) and
// the packed spin plane.
func (k *Kawasaki) refreshSets(i int) {
	unhappy := k.p.unhappy[i>>6]&(1<<uint(i&63)) != 0
	plusSpin := k.p.bits.Bit(i)
	k.unhappyPlus.Update(i, unhappy && plusSpin)
	k.unhappyMinus.Update(i, unhappy && !plusSpin)
}

// forceFlipTracked flips site i in the underlying process and replays
// per-type set maintenance over exactly the sites whose membership can
// have changed, in the reference engine's window-visit order.
func (k *Kawasaki) forceFlipTracked(i int) {
	p := k.p
	p.changed.Reset()
	p.ForceFlip(i)
	for _, j := range p.changed.Items() {
		k.refreshSets(int(j))
	}
}

// StepAttempt samples one unhappy agent of each type uniformly at
// random and swaps them iff the swap makes both happy, consuming the
// random source exactly like the reference engine. It returns
// swapped=false with done=true when no unhappy pair exists.
func (k *Kawasaki) StepAttempt() (swapped, done bool) {
	if k.unhappyPlus.Len() == 0 || k.unhappyMinus.Len() == 0 {
		return false, true
	}
	k.attempts++
	u := int(k.unhappyPlus.Sample(k.p.src))
	v := int(k.unhappyMinus.Sample(k.p.src))
	// Apply the swap as two tracked flips, then verify both movers are
	// happy at their new locations; revert if not.
	k.forceFlipTracked(u) // u's site becomes -1 (the mover from v)
	k.forceFlipTracked(v) // v's site becomes +1 (the mover from u)
	if k.p.Happy(u) && k.p.Happy(v) {
		k.swaps++
		return true, false
	}
	k.forceFlipTracked(v)
	k.forceFlipTracked(u)
	return false, false
}

// Run performs swap attempts until no unhappy pair exists, until
// maxAttempts have been made, or until failStreak consecutive attempts
// fail — the same stopping rule as the reference engine.
func (k *Kawasaki) Run(maxAttempts, failStreak int64) (performed int64, done bool) {
	if maxAttempts <= 0 {
		return 0, false
	}
	var streak int64
	for a := int64(0); a < maxAttempts; a++ {
		swapped, noPairs := k.StepAttempt()
		if noPairs {
			return performed, true
		}
		if swapped {
			performed++
			streak = 0
		} else {
			streak++
			if failStreak > 0 && streak >= failStreak {
				return performed, false
			}
		}
	}
	return performed, false
}

// CheckInvariants verifies the per-type unhappy sets against brute
// force in addition to the underlying process invariants.
func (k *Kawasaki) CheckInvariants() error {
	if err := k.p.CheckInvariants(); err != nil {
		return err
	}
	if err := k.unhappyPlus.CheckInvariants("unhappyPlus", func(i int) bool {
		return !k.p.Happy(i) && k.p.lat.SpinAt(i) == grid.Plus
	}); err != nil {
		return err
	}
	return k.unhappyMinus.CheckInvariants("unhappyMinus", func(i int) bool {
		return !k.p.Happy(i) && k.p.lat.SpinAt(i) == grid.Minus
	})
}

// The fast swap engine satisfies the shared swap contract.
var _ dynamics.SwapEngine = (*Kawasaki)(nil)
