// Package fastglauber is the bit-packed fast path of the Glauber
// segregation process. It is observationally identical to the reference
// engine (internal/dynamics.Process): same flippable-set bookkeeping
// order, same random-source consumption, hence bit-identical flip
// sequences, clocks, spin arrays, and observables for any seed — the
// differential harness in internal/difftest pins this equivalence.
//
// The speed comes from how a flip's O((2w+1)^2) neighborhood update is
// executed, not from changing the dynamics. Spins live one per bit in
// []uint64 rows (internal/fastgrid); per-site plus-counts live four to
// a word as 16-bit lanes, so the ±1 count update of a flip's column
// band is a handful of masked SWAR word additions per row instead of
// (2w+1) scalar read-modify-writes. Most sites in the band keep their
// happy/flippable classification after a flip; the engine detects the
// rare sites that cross a classification boundary with a SWAR
// equality scan of the freshly updated count lanes against the (at
// most four) boundary count values, and only those sites take the
// scalar set-maintenance path. Initial window counts are built with
// math/bits.OnesCount64 over packed row windows.
//
// Capacity: counts are 16-bit lanes, so the engine requires
// (2w+1)^2 <= MaxNeighborhood; construction fails above that and
// callers fall back to the reference engine.
package fastglauber

import (
	"errors"
	"fmt"
	"math/bits"

	"gridseg/internal/dynamics"
	"gridseg/internal/fastgrid"
	"gridseg/internal/grid"
	"gridseg/internal/rng"
	"gridseg/internal/theory"
)

// MaxNeighborhood is the largest neighborhood size N = (2w+1)^2 the
// packed 16-bit count lanes can hold. Beyond it use the reference
// engine (w <= 90 fits).
const MaxNeighborhood = 32767

const (
	laneOnes = 0x0001_0001_0001_0001
	laneHigh = 0x8000_8000_8000_8000
)

// addMask[lo][hi] has a 1 in the low bit of each 16-bit lane lo..hi:
// the SWAR ±1 pattern for a partial word covering those lanes.
var addMask [4][4]uint64

func init() {
	for lo := 0; lo < 4; lo++ {
		for hi := lo; hi < 4; hi++ {
			var m uint64
			for l := lo; l <= hi; l++ {
				m |= 1 << uint(16*l)
			}
			addMask[lo][hi] = m
		}
	}
}

// Process is the fast Glauber engine. Construct with New; the zero
// value is not usable. It satisfies dynamics.Engine.
type Process struct {
	lat    *grid.Lattice     // reference mirror, kept in lockstep
	bits   *fastgrid.Lattice // packed spins (hot path)
	src    *rng.Source
	n      int // lattice side
	w      int // horizon
	nbhd   int // N = (2w+1)^2
	thresh int // happiness threshold: same-type count required
	cpr    int // count words per row = ceil(n/4)
	// counts holds the +1 count of every site's neighborhood, four
	// sites per word in 16-bit lanes (site x of row y is lane x&3 of
	// word y*cpr + x>>2).
	counts []uint64
	// unhappy is a bitset over sites mirroring the reference engine's
	// unhappy flags.
	unhappy  []uint64
	nUnhappy int
	// Flippable-set bookkeeping, identical to the reference engine:
	// flippable lists admissible sites, pos[i] is i's index in it or -1.
	flippable []int32
	pos       []int32
	time      float64
	flips     int64
	// upVals/downVals are the lane-broadcast count values at which a
	// site's classification can change after a +1/-1 count update.
	// Unused slots hold the unmatchable sentinel (counts never exceed
	// 0x7fff), so the hot path always tests all four branch-free.
	upVals   [4]uint64
	downVals [4]uint64
	nUp      int
	nDown    int
}

// noBoundary is a lane-broadcast value no count lane can ever equal;
// it pads unused boundary slots.
const noBoundary = 0xffff * uint64(laneOnes)

// The fast engine satisfies the shared engine contract.
var _ dynamics.Engine = (*Process)(nil)

// Fits reports whether the fast engine supports horizon w (the packed
// count lanes must hold N = (2w+1)^2).
func Fits(w int) bool { return w >= 1 && (2*w+1)*(2*w+1) <= MaxNeighborhood }

// New creates a fast Glauber process over the given lattice with
// horizon w and intolerance tauTilde, with the same semantics and
// validation as the reference dynamics.New. The lattice is used in
// place: it is mutated by the process and stays bit-identical to the
// packed state after every flip.
func New(lat *grid.Lattice, w int, tauTilde float64, src *rng.Source) (*Process, error) {
	if w < 1 {
		return nil, errors.New("fastglauber: horizon must be >= 1")
	}
	if 2*w+1 > lat.N() {
		return nil, fmt.Errorf("fastglauber: neighborhood side %d exceeds lattice side %d", 2*w+1, lat.N())
	}
	if tauTilde < 0 || tauTilde > 1 {
		return nil, errors.New("fastglauber: intolerance must be in [0, 1]")
	}
	if src == nil {
		return nil, errors.New("fastglauber: nil random source")
	}
	if lat.HasVacancies() {
		// One spin per bit leaves no room for an occupancy state; the
		// scenario layer routes vacancy (and open-boundary, and
		// heterogeneous-tau) runs to the reference engine instead.
		return nil, errors.New("fastglauber: vacancy lattices need the reference engine")
	}
	nbhd := (2*w + 1) * (2*w + 1)
	if nbhd > MaxNeighborhood {
		return nil, fmt.Errorf("fastglauber: neighborhood size %d exceeds count lane capacity %d (use the reference engine)", nbhd, MaxNeighborhood)
	}
	n := lat.N()
	p := &Process{
		lat:     lat,
		bits:    fastgrid.FromLattice(lat),
		src:     src,
		n:       n,
		w:       w,
		nbhd:    nbhd,
		thresh:  theory.Threshold(tauTilde, nbhd),
		cpr:     (n + 3) / 4,
		unhappy: make([]uint64, (n*n+63)/64),
		pos:     make([]int32, n*n),
	}
	fresh := p.bits.WindowCounts(w)
	p.counts = make([]uint64, n*p.cpr)
	for i, c := range fresh {
		x, y := i%n, i/n
		p.counts[y*p.cpr+x>>2] |= uint64(c) << uint(16*(x&3))
	}
	for i := range p.pos {
		p.pos[i] = -1
	}
	// Classification boundaries: a +1 count update can change a site's
	// class only when the new count hits one of these values (and
	// symmetrically for -1). Values outside [0, N] can never match.
	addBoundary(&p.upVals, &p.nUp, p.nbhd, p.thresh)              // plus site becomes happy
	addBoundary(&p.upVals, &p.nUp, p.nbhd, p.nbhd+2-p.thresh)     // plus site loses flip eligibility
	addBoundary(&p.upVals, &p.nUp, p.nbhd, p.nbhd-p.thresh+1)     // minus site becomes unhappy
	addBoundary(&p.upVals, &p.nUp, p.nbhd, p.thresh-1)            // minus site gains flip eligibility
	addBoundary(&p.downVals, &p.nDown, p.nbhd, p.thresh-1)        // plus site becomes unhappy
	addBoundary(&p.downVals, &p.nDown, p.nbhd, p.nbhd+1-p.thresh) // plus site gains flip eligibility
	addBoundary(&p.downVals, &p.nDown, p.nbhd, p.nbhd-p.thresh)   // minus site becomes happy
	addBoundary(&p.downVals, &p.nDown, p.nbhd, p.thresh-2)        // minus site loses flip eligibility
	for i := p.nUp; i < 4; i++ {
		p.upVals[i] = noBoundary
	}
	for i := p.nDown; i < 4; i++ {
		p.downVals[i] = noBoundary
	}
	for i := 0; i < n*n; i++ {
		p.refreshSite(i, int(fresh[i]))
	}
	return p, nil
}

// addBoundary appends the lane-broadcast form of count value v if it is
// reachable and not already present.
func addBoundary(arr *[4]uint64, cnt *int, nbhd, v int) {
	if v < 0 || v > nbhd {
		return
	}
	bv := uint64(v) * laneOnes
	for i := 0; i < *cnt; i++ {
		if arr[i] == bv {
			return
		}
	}
	arr[*cnt] = bv
	*cnt++
}

// Lattice returns the underlying lattice (live view).
func (p *Process) Lattice() *grid.Lattice { return p.lat }

// Horizon returns the neighborhood radius w.
func (p *Process) Horizon() int { return p.w }

// NeighborhoodSize returns N = (2w+1)^2.
func (p *Process) NeighborhoodSize() int { return p.nbhd }

// Threshold returns the integer happiness threshold tau*N.
func (p *Process) Threshold() int { return p.thresh }

// Tau returns the rational intolerance tau = threshold/N.
func (p *Process) Tau() float64 { return float64(p.thresh) / float64(p.nbhd) }

// Time returns the elapsed continuous time.
func (p *Process) Time() float64 { return p.time }

// Flips returns the number of effective flips so far.
func (p *Process) Flips() int64 { return p.flips }

// count returns the maintained +1 count of N(i).
func (p *Process) count(i int) int {
	x, y := i%p.n, i/p.n
	return int(p.counts[y*p.cpr+x>>2] >> uint(16*(x&3)) & 0xffff)
}

// PlusCount returns the maintained count of +1 agents in N(i).
func (p *Process) PlusCount(i int) int { return p.count(i) }

// SameCount returns the number of agents in N(u) sharing u's type,
// including u itself.
func (p *Process) SameCount(i int) int {
	if p.bits.Bit(i) {
		return p.count(i)
	}
	return p.nbhd - p.count(i)
}

// Happy reports whether the agent at site i is happy: s(u) >= tau.
func (p *Process) Happy(i int) bool { return p.SameCount(i) >= p.thresh }

// Flippable reports whether site i is an admissible flip.
func (p *Process) Flippable(i int) bool {
	same := p.SameCount(i)
	return same < p.thresh && p.nbhd-same+1 >= p.thresh
}

// FlippableCount returns the number of currently admissible flips.
func (p *Process) FlippableCount() int { return len(p.flippable) }

// UnhappyCount returns the number of currently unhappy agents.
func (p *Process) UnhappyCount() int { return p.nUnhappy }

// HappyFraction returns the fraction of happy agents.
func (p *Process) HappyFraction() float64 {
	return 1 - float64(p.nUnhappy)/float64(p.n*p.n)
}

// Fixated reports whether the process has terminated.
func (p *Process) Fixated() bool { return len(p.flippable) == 0 }

// refreshSite recomputes the classification of site j from its current
// count c and spin, and updates the unhappy bitset and flippable set —
// the same transition the reference engine's refresh performs, applied
// only to sites whose count crossed a classification boundary.
func (p *Process) refreshSite(j, c int) {
	var unhappy, flippable bool
	if p.bits.Bit(j) {
		unhappy = c < p.thresh
		flippable = unhappy && c <= p.nbhd+1-p.thresh
	} else {
		unhappy = c > p.nbhd-p.thresh
		flippable = unhappy && c >= p.thresh-1
	}
	wi, bm := j>>6, uint64(1)<<uint(j&63)
	if (p.unhappy[wi]&bm != 0) != unhappy {
		p.unhappy[wi] ^= bm
		if unhappy {
			p.nUnhappy++
		} else {
			p.nUnhappy--
		}
	}
	in := p.pos[j] >= 0
	switch {
	case flippable && !in:
		p.pos[j] = int32(len(p.flippable))
		p.flippable = append(p.flippable, int32(j))
	case !flippable && in:
		q := p.pos[j]
		last := p.flippable[len(p.flippable)-1]
		p.flippable[q] = last
		p.pos[last] = q
		p.flippable = p.flippable[:len(p.flippable)-1]
		p.pos[j] = -1
	}
}

// updateSegment applies the ±1 count update to columns [a, b] of row y
// (no wrap within a segment) and refreshes, in ascending column order,
// every site whose new count sits on a classification boundary.
// forceX, when in [a, b], is unconditionally refreshed at its column
// position — the flipped site changes class by spin, not by count.
func (p *Process) updateSegment(y, a, b int, add bool, vals *[4]uint64, forceX int) {
	base := y * p.cpr
	row := y * p.n
	w0, w1 := a>>2, b>>2
	fk := -1
	var fbit uint64
	if forceX >= a && forceX <= b {
		fk = forceX >> 2
		fbit = 0x8000 << uint(16*(forceX&3))
	}
	v0, v1, v2, v3 := vals[0], vals[1], vals[2], vals[3]
	for k := w0; k <= w1; k++ {
		am := uint64(laneOnes)
		if k == w0 || k == w1 {
			lo, hi := 0, 3
			if k == w0 {
				lo = a & 3
			}
			if k == w1 {
				hi = b & 3
			}
			am = addMask[lo][hi]
		}
		idx := base + k
		cw := p.counts[idx]
		if add {
			cw += am
		} else {
			cw -= am
		}
		p.counts[idx] = cw
		// SWAR zero-lane scan of cw against the four boundary values.
		// With lanes always <= 0x7fff the scan never misses an equal
		// lane; borrow propagation can flag a non-matching neighbor
		// lane, which is harmless because refreshSite is a no-op when
		// the classification did not change.
		x0 := cw ^ v0
		x1 := cw ^ v1
		x2 := cw ^ v2
		x3 := cw ^ v3
		flags := ((x0 - laneOnes) & ^x0) | ((x1 - laneOnes) & ^x1) |
			((x2 - laneOnes) & ^x2) | ((x3 - laneOnes) & ^x3)
		flags &= am << 15
		if k == fk {
			flags |= fbit
		}
		for flags != 0 {
			l := bits.TrailingZeros64(flags) >> 4
			p.refreshSite(row+k<<2+l, int(cw>>uint(16*l)&0xffff))
			flags &= flags - 1
		}
	}
}

// applyFlip flips site i and updates counts and set membership of every
// affected site, visiting rows and (wrapped) columns in the same order
// as the reference engine so the flippable slice evolves identically.
func (p *Process) applyFlip(i int) {
	n, w := p.n, p.w
	x0, y0 := i%n, i/n
	plus := p.bits.FlipBit(i)
	if plus {
		p.lat.SetAt(i, grid.Plus)
	} else {
		p.lat.SetAt(i, grid.Minus)
	}
	vals := &p.downVals
	if plus {
		vals = &p.upVals
	}
	xlo := x0 - w
	if xlo < 0 {
		xlo += n
	}
	width := 2*w + 1
	for dy := -w; dy <= w; dy++ {
		y := y0 + dy
		if y < 0 {
			y += n
		} else if y >= n {
			y -= n
		}
		forceX := -1
		if dy == 0 {
			forceX = x0
		}
		if xlo+width <= n {
			p.updateSegment(y, xlo, xlo+width-1, plus, vals, forceX)
		} else {
			p.updateSegment(y, xlo, n-1, plus, vals, forceX)
			p.updateSegment(y, 0, xlo+width-1-n, plus, vals, forceX)
		}
	}
}

// ForceFlip flips site i unconditionally and updates all bookkeeping,
// mirroring the reference engine's ForceFlip.
func (p *Process) ForceFlip(i int) { p.applyFlip(i) }

// Step performs one effective event with the exact random-source
// consumption of the reference engine: Exp(k) clock advance, then a
// uniform pick from the flippable slice.
func (p *Process) Step() (site int, ok bool) {
	k := len(p.flippable)
	if k == 0 {
		return 0, false
	}
	p.time += p.src.ExpRate(float64(k))
	i := int(p.flippable[p.src.Intn(k)])
	p.applyFlip(i)
	p.flips++
	return i, true
}

// Run advances the process until fixation or until maxFlips additional
// flips have been performed (maxFlips <= 0 means no limit).
func (p *Process) Run(maxFlips int64) (performed int64, fixated bool) {
	for maxFlips <= 0 || performed < maxFlips {
		if _, ok := p.Step(); !ok {
			return performed, true
		}
		performed++
	}
	return performed, p.Fixated()
}

// Phi returns the paper's Lyapunov function, recomputed from the
// maintained counts in O(n^2).
func (p *Process) Phi() int64 {
	var phi int64
	for i := 0; i < p.n*p.n; i++ {
		phi += int64(p.SameCount(i))
	}
	return phi
}

// MaxFlipsBound returns the a-priori Lyapunov bound on total flips.
func (p *Process) MaxFlipsBound() int64 {
	return int64(p.nbhd) * int64(p.n) * int64(p.n) / 2
}

// CheckInvariants verifies the packed state against brute-force
// recomputation and against the reference mirror lattice; it returns a
// descriptive error on the first mismatch.
func (p *Process) CheckInvariants() error {
	if err := p.bits.EqualLattice(p.lat); err != nil {
		return err
	}
	fresh := p.bits.WindowCounts(p.w)
	inSet := make(map[int32]bool, len(p.flippable))
	for j, site := range p.flippable {
		if p.pos[site] != int32(j) {
			return fmt.Errorf("pos[%d] = %d, want %d", site, p.pos[site], j)
		}
		if inSet[site] {
			return fmt.Errorf("site %d appears twice in flippable set", site)
		}
		inSet[site] = true
	}
	unhappyCount := 0
	for i := 0; i < p.n*p.n; i++ {
		if got, want := p.count(i), int(fresh[i]); got != want {
			return fmt.Errorf("count[%d] = %d, want %d", i, got, want)
		}
		same := p.SameCount(i)
		unhappy := same < p.thresh
		if got := p.unhappy[i>>6]&(1<<uint(i&63)) != 0; got != unhappy {
			return fmt.Errorf("unhappy[%d] = %v, want %v", i, got, unhappy)
		}
		if unhappy {
			unhappyCount++
		}
		flippable := unhappy && p.nbhd-same+1 >= p.thresh
		if flippable != inSet[int32(i)] {
			return fmt.Errorf("flippable membership of %d = %v, want %v", i, inSet[int32(i)], flippable)
		}
		if !inSet[int32(i)] && p.pos[i] != -1 {
			return fmt.Errorf("pos[%d] = %d for non-member", i, p.pos[i])
		}
	}
	if unhappyCount != p.nUnhappy {
		return fmt.Errorf("nUnhappy = %d, want %d", p.nUnhappy, unhappyCount)
	}
	return nil
}
