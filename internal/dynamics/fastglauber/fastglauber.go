// Package fastglauber is the bit-packed fast path of the Glauber
// segregation process. It is observationally identical to the reference
// engine (internal/dynamics.Process): same flippable-set bookkeeping
// order, same random-source consumption, hence bit-identical flip
// sequences, clocks, spin arrays, and observables for any seed — the
// differential harness in internal/difftest pins this equivalence.
//
// The speed comes from how a flip's O((2w+1)^2) neighborhood update is
// executed, not from changing the dynamics. Spins live one per bit in
// []uint64 rows (internal/fastgrid); per-site plus-counts live four to
// a word as 16-bit lanes, so the ±1 count update of a flip's column
// band is a handful of masked SWAR word additions per row instead of
// (2w+1) scalar read-modify-writes. Most sites in the band keep their
// happy/flippable classification after a flip; the engine detects the
// rare sites that cross a classification boundary with a SWAR
// equality scan of the freshly updated count lanes against boundary
// count values, and only those sites take the scalar set-maintenance
// path. Initial window counts are built with math/bits.OnesCount64
// over packed row windows.
//
// The engine covers every scenario of the topology subsystem. In the
// paper's default setting (torus, full occupancy, global tau) the
// boundary count values are the same four lane-broadcast words for
// every site. Open hard walls, vacancies, and per-site intolerance all
// reduce to the same generalization: each site u gets its own integer
// threshold ceil(tau_u * occ(u)) over its own occupied window count
// occ(u), so the engine precomputes a per-site boundary table — four
// 16-bit boundary values per count lane, stored as four table words
// alongside each count word — and the SWAR scan tests the updated
// lanes against their own boundaries instead of a broadcast value.
// Occupancy and thresholds are static under flip and swap dynamics,
// so the tables are built once at construction. Open boundaries
// additionally clamp the flip's row band at the grid edges instead of
// splitting it into wrapped segments.
//
// The relocation dynamic Move changes occupancy, so it trades the
// static boundary tables for a second packed lane array of occupied
// window counts: a relocation is a vacate+occupy pair of masked band
// additions against the count and occupancy lanes, followed by a
// branch-free packed reclassification of the two windows with
// thresholds derived from the settled occupancy lanes (see move.go).
//
// Capacity: counts are 16-bit lanes, so the engine requires
// (2w+1)^2 <= MaxNeighborhood; construction fails with
// ErrNeighborhoodTooLarge above that and callers fall back to the
// reference engine.
package fastglauber

import (
	"errors"
	"fmt"
	"math/bits"

	"gridseg/internal/dynamics"
	"gridseg/internal/fastgrid"
	"gridseg/internal/grid"
	"gridseg/internal/rng"
	"gridseg/internal/sampleset"
	"gridseg/internal/theory"
)

// MaxNeighborhood is the largest neighborhood size N = (2w+1)^2 the
// packed 16-bit count lanes can hold. Beyond it use the reference
// engine (w <= 90 fits).
const MaxNeighborhood = 32767

// ErrNeighborhoodTooLarge is the typed sentinel returned by the
// constructors when (2w+1)^2 exceeds MaxNeighborhood — the one model
// shape the packed 16-bit count lanes cannot represent. Callers that
// want a fallback should test with errors.Is and construct the
// reference engine instead.
var ErrNeighborhoodTooLarge = errors.New("neighborhood exceeds the 16-bit count-lane capacity")

const (
	laneOnes = 0x0001_0001_0001_0001
	laneHigh = 0x8000_8000_8000_8000
)

// addMask[lo][hi] has a 1 in the low bit of each 16-bit lane lo..hi:
// the SWAR ±1 pattern for a partial word covering those lanes.
var addMask [4][4]uint64

func init() {
	for lo := 0; lo < 4; lo++ {
		for hi := lo; hi < 4; hi++ {
			var m uint64
			for l := lo; l <= hi; l++ {
				m |= 1 << uint(16*l)
			}
			addMask[lo][hi] = m
		}
	}
}

// Process is the fast Glauber engine. Construct with New; the zero
// value is not usable. It satisfies dynamics.Engine.
type Process struct {
	lat    *grid.Lattice     // reference mirror, kept in lockstep
	bits   *fastgrid.Lattice // packed spins + occupancy (hot path)
	src    *rng.Source
	n      int     // lattice side
	w      int     // horizon
	nbhd   int     // N = (2w+1)^2
	thresh int     // global happiness threshold: same-type count required
	tau    float64 // global intolerance
	open   bool    // hard-wall boundary (windows clamp, not wrap)
	agents int     // occupied sites (= n^2 when fully occupied)
	cpr    int     // count words per row = ceil(n/4)
	// counts holds the +1 count of every site's neighborhood, four
	// sites per word in 16-bit lanes (site x of row y is lane x&3 of
	// word y*cpr + x>>2).
	counts []uint64
	// unhappy is a bitset over sites mirroring the reference engine's
	// unhappy flags.
	unhappy  []uint64
	nUnhappy int
	// Indexed sampler over admissible flips, identical in ordering to
	// the reference engine's (see internal/sampleset).
	flippable *sampleset.Set
	time      float64
	flips     int64
	// upVals/downVals are the lane-broadcast count values at which a
	// site's classification can change after a +1/-1 count update.
	// Unused slots hold the unmatchable sentinel (counts never exceed
	// 0x7fff), so the hot path always tests all four branch-free.
	// They drive the default-scenario scan; scenarios use the per-site
	// tables below instead.
	upVals   [4]uint64
	downVals [4]uint64
	nUp      int
	nDown    int
	// Scenario state, all nil in the default scenario: occA holds the
	// occupied count of every site's (possibly edge-clamped) window,
	// threshA the per-site integer thresholds ceil(tau_u * occ_u),
	// tauOf the per-site intolerance. upTab/downTab are the per-site
	// boundary tables: four words per count word (stride 4), lane l of
	// word 4*k+s holding the s-th boundary count value of site 4k+l —
	// the sentinel 0xffff in every lane of a vacant site, so vacancies
	// are never flagged by the scan. Occupancy never changes under
	// flip and swap dynamics, so all of this is immutable after New.
	occA    []int32
	threshA []int32
	tauOf   []float64
	upTab   []uint64
	downTab []uint64
	// Relocation representation, replacing occA/threshA under the Move
	// engine: occC holds the occupied-window counts in the same packed
	// 16-bit lane layout as counts, so relocations maintain them with
	// the masked band adds instead of per-site int32 rewrites, and
	// thresholds are derived on read — threshTab memoizes ceil(tau*k)
	// per occupancy under a global intolerance, per-site intolerance
	// computes the ceil directly.
	occC      []uint64
	threshTab []int32
	// Changed-site tracking for the swap (Kawasaki) and relocation
	// (Move) wrappers: when track is set, applyFlip appends to changed —
	// in reference window-visit order — every site whose unhappy flag
	// toggled, plus the flipped site itself (whose per-type set
	// membership can change by spin alone).
	track    bool
	changed  sampleset.List
	flipSite int
	// relocating marks a process backing the Move engine: occupancy
	// changes under relocation, so the static boundary tables are not
	// built and flips are forbidden (Move never flips spins in place).
	// The flippable sampler is likewise unmaintained (and empty): no
	// caller consults it under the relocation dynamic, and skipping its
	// per-site updates is most of the fast engine's advantage on the
	// window-sized reclassification passes.
	relocating bool
	// Shard state (see shard.go). A standalone process owns every site:
	// ownLo = 0, ownHi = n^2, sampBase = 0, grp = nil, and none of the
	// shard branches below are ever taken. A shard of a ShardGroup owns
	// the contiguous site range [ownLo, ownHi) of its strip rows; its
	// flippable sampler indexes sites relative to sampBase = ownLo, and
	// refreshSite routes sites outside the owned range through the
	// group: skipped under the deterministic phase protocol (the merge
	// barrier re-derives them), applied to the owning shard under the
	// free-running protocol (the caller holds the neighbor locks).
	ownLo, ownHi int
	sampBase     int
	grp          *ShardGroup
}

// noBoundary is a lane-broadcast value no count lane can ever equal;
// it pads unused boundary slots.
const noBoundary = 0xffff * uint64(laneOnes)

// The fast engine satisfies the shared engine contract.
var _ dynamics.Engine = (*Process)(nil)

// Fits reports whether the fast engine supports horizon w (the packed
// count lanes must hold N = (2w+1)^2).
func Fits(w int) bool { return w >= 1 && (2*w+1)*(2*w+1) <= MaxNeighborhood }

// New creates a fast Glauber process over the given lattice with
// horizon w and intolerance tauTilde, with the same semantics and
// validation as the reference dynamics.New. The lattice is used in
// place: it is mutated by the process and stays bit-identical to the
// packed state after every flip. Vacancies are read off the lattice,
// exactly like the reference constructor.
func New(lat *grid.Lattice, w int, tauTilde float64, src *rng.Source) (*Process, error) {
	return NewScenario(lat, w, tauTilde, dynamics.Scenario{}, src)
}

// NewScenario creates a fast Glauber process under the given scenario
// — open or torus boundary, optional per-site intolerance, vacancies
// read off the lattice — with the same semantics and validation as the
// reference dynamics.NewScenario. Construction consumes no randomness
// (only Step draws), and the resulting trajectories are bit-identical
// to the reference engine's in every scenario.
func NewScenario(lat *grid.Lattice, w int, tauTilde float64, sc dynamics.Scenario, src *rng.Source) (*Process, error) {
	return newScenario(lat, w, tauTilde, sc, src, false)
}

// newScenario is the shared constructor body. With relocating set it
// builds a process for the Move engine: occupancy is about to change,
// so the per-site boundary tables — which are static under the flip
// and swap dynamics and would go stale under relocation — are skipped,
// and applyFlip panics if ever reached.
func newScenario(lat *grid.Lattice, w int, tauTilde float64, sc dynamics.Scenario, src *rng.Source, relocating bool) (*Process, error) {
	if w < 1 {
		return nil, errors.New("fastglauber: horizon must be >= 1")
	}
	if 2*w+1 > lat.N() {
		return nil, fmt.Errorf("fastglauber: neighborhood side %d exceeds lattice side %d", 2*w+1, lat.N())
	}
	if tauTilde < 0 || tauTilde > 1 {
		return nil, errors.New("fastglauber: intolerance must be in [0, 1]")
	}
	if src == nil {
		return nil, errors.New("fastglauber: nil random source")
	}
	if sc.Taus != nil && len(sc.Taus) != lat.Sites() {
		return nil, fmt.Errorf("fastglauber: per-site tau field has %d entries, want %d", len(sc.Taus), lat.Sites())
	}
	for _, tv := range sc.Taus {
		if tv < 0 || tv > 1 {
			return nil, fmt.Errorf("fastglauber: per-site intolerance %v out of [0, 1]", tv)
		}
	}
	nbhd := (2*w + 1) * (2*w + 1)
	if nbhd > MaxNeighborhood {
		return nil, fmt.Errorf("fastglauber: neighborhood size %d (w=%d): %w (max %d)", nbhd, w, ErrNeighborhoodTooLarge, MaxNeighborhood)
	}
	n := lat.N()
	p := &Process{
		lat:        lat,
		bits:       fastgrid.FromLattice(lat),
		src:        src,
		n:          n,
		w:          w,
		nbhd:       nbhd,
		thresh:     theory.Threshold(tauTilde, nbhd),
		tau:        tauTilde,
		open:       sc.Open,
		agents:     lat.CountOccupied(),
		cpr:        (n + 3) / 4,
		unhappy:    make([]uint64, (n*n+63)/64),
		flippable:  sampleset.New(n * n),
		flipSite:   -1,
		relocating: relocating,
		ownHi:      n * n,
	}
	// Fold the initial window counts into the packed lanes one row at a
	// time: the streaming pass keeps O(n*w) scratch instead of an n^2
	// flat count temporary, which is what bounds construction memory on
	// giant grids.
	p.counts = make([]uint64, n*p.cpr)
	p.bits.VisitPlusWindowCounts(w, p.open, func(y int, row []int32) {
		base := y * p.cpr
		for x, c := range row {
			p.counts[base+x>>2] |= uint64(c) << uint(16*(x&3))
		}
	})
	if sc.Open || p.agents < lat.Sites() || sc.Taus != nil {
		// Some axis deviates from the paper's setting: materialize the
		// per-site state and boundary tables; the broadcast upVals and
		// downVals stay unused.
		p.tauOf = sc.Taus
		if relocating {
			// Occupancy changes on every relocation: keep the occupied
			// counts in packed lanes maintained by the same masked band
			// adds as the plus counts, and derive thresholds on read,
			// instead of rewriting two int32 arrays across both windows
			// of every move. Static boundary tables would go stale and
			// are never built.
			p.occC = make([]uint64, n*p.cpr)
			p.bits.VisitOccupiedWindowCounts(w, p.open, func(y int, row []int32) {
				base := y * p.cpr
				for x, c := range row {
					p.occC[base+x>>2] |= uint64(c) << uint(16*(x&3))
				}
			})
			if sc.Taus == nil {
				p.threshTab = make([]int32, p.nbhd+1)
				for k := range p.threshTab {
					p.threshTab[k] = int32(theory.Threshold(tauTilde, k))
				}
			}
		} else {
			p.occA = p.bits.OccupiedWindowCounts(w, p.open)
			p.threshA = make([]int32, n*n)
			for i := range p.threshA {
				p.threshA[i] = int32(theory.Threshold(p.tauAt(i), int(p.occA[i])))
			}
			p.buildBoundaryTables()
		}
	} else {
		// Classification boundaries: a +1 count update can change a
		// site's class only when the new count hits one of these values
		// (and symmetrically for -1). Values outside [0, N] never match.
		addBoundary(&p.upVals, &p.nUp, p.nbhd, p.thresh)              // plus site becomes happy
		addBoundary(&p.upVals, &p.nUp, p.nbhd, p.nbhd+2-p.thresh)     // plus site loses flip eligibility
		addBoundary(&p.upVals, &p.nUp, p.nbhd, p.nbhd-p.thresh+1)     // minus site becomes unhappy
		addBoundary(&p.upVals, &p.nUp, p.nbhd, p.thresh-1)            // minus site gains flip eligibility
		addBoundary(&p.downVals, &p.nDown, p.nbhd, p.thresh-1)        // plus site becomes unhappy
		addBoundary(&p.downVals, &p.nDown, p.nbhd, p.nbhd+1-p.thresh) // plus site gains flip eligibility
		addBoundary(&p.downVals, &p.nDown, p.nbhd, p.nbhd-p.thresh)   // minus site becomes happy
		addBoundary(&p.downVals, &p.nDown, p.nbhd, p.thresh-2)        // minus site loses flip eligibility
		for i := p.nUp; i < 4; i++ {
			p.upVals[i] = noBoundary
		}
		for i := p.nDown; i < 4; i++ {
			p.downVals[i] = noBoundary
		}
	}
	for i := 0; i < n*n; i++ {
		p.refreshSite(i, p.count(i))
	}
	return p, nil
}

// buildBoundaryTables fills the per-site boundary tables from the
// static occ/threshold arrays. Each occupied site gets the same eight
// candidate boundary values the global addBoundary calls enumerate,
// with occ_u and th_u in place of the constant N and global threshold;
// values outside [0, occ_u] (masked to 16 bits) can never equal a
// count lane, so they act as natural sentinels, and vacant sites keep
// the unmatchable 0xffff in every slot — the scan never flags them.
func (p *Process) buildBoundaryTables() {
	p.upTab = make([]uint64, 4*len(p.counts))
	p.downTab = make([]uint64, 4*len(p.counts))
	for i := range p.upTab {
		p.upTab[i] = noBoundary
		p.downTab[i] = noBoundary
	}
	for i := 0; i < p.n*p.n; i++ {
		if !p.bits.OccupiedBit(i) {
			continue
		}
		x, y := i%p.n, i/p.n
		wi := 4 * (y*p.cpr + x>>2)
		lane := uint(16 * (x & 3))
		occ, th := int(p.occA[i]), int(p.threshA[i])
		up := [4]int{th, occ + 2 - th, occ - th + 1, th - 1}
		down := [4]int{th - 1, occ + 1 - th, occ - th, th - 2}
		for s := 0; s < 4; s++ {
			p.upTab[wi+s] = p.upTab[wi+s]&^(uint64(0xffff)<<lane) | uint64(up[s]&0xffff)<<lane
			p.downTab[wi+s] = p.downTab[wi+s]&^(uint64(0xffff)<<lane) | uint64(down[s]&0xffff)<<lane
		}
	}
}

// addBoundary appends the lane-broadcast form of count value v if it is
// reachable and not already present.
func addBoundary(arr *[4]uint64, cnt *int, nbhd, v int) {
	if v < 0 || v > nbhd {
		return
	}
	bv := uint64(v) * laneOnes
	for i := 0; i < *cnt; i++ {
		if arr[i] == bv {
			return
		}
	}
	arr[*cnt] = bv
	*cnt++
}

// Lattice returns the underlying lattice (live view).
func (p *Process) Lattice() *grid.Lattice { return p.lat }

// Horizon returns the neighborhood radius w.
func (p *Process) Horizon() int { return p.w }

// NeighborhoodSize returns N = (2w+1)^2.
func (p *Process) NeighborhoodSize() int { return p.nbhd }

// Threshold returns the integer happiness threshold tau*N.
func (p *Process) Threshold() int { return p.thresh }

// Tau returns the rational intolerance tau = threshold/N.
func (p *Process) Tau() float64 { return float64(p.thresh) / float64(p.nbhd) }

// Time returns the elapsed continuous time.
func (p *Process) Time() float64 { return p.time }

// Flips returns the number of effective flips so far.
func (p *Process) Flips() int64 { return p.flips }

// count returns the maintained +1 count of N(i).
func (p *Process) count(i int) int {
	x, y := i%p.n, i/p.n
	return int(p.counts[y*p.cpr+x>>2] >> uint(16*(x&3)) & 0xffff)
}

// occAt returns the occupied count of N(i) (the scenario-aware
// generalization of the constant neighborhood size N).
func (p *Process) occAt(i int) int {
	if p.occC != nil {
		x, y := i%p.n, i/p.n
		return int(p.occC[y*p.cpr+x>>2] >> uint(16*(x&3)) & 0xffff)
	}
	if p.occA == nil {
		return p.nbhd
	}
	return int(p.occA[i])
}

// tauAt returns the intolerance in force at site i.
func (p *Process) tauAt(i int) float64 {
	if p.tauOf == nil {
		return p.tau
	}
	return p.tauOf[i]
}

// threshAt returns the integer happiness threshold of site i,
// ceil(tau_i * occ_i), derived rather than stored under relocation.
func (p *Process) threshAt(i int) int {
	if p.threshA != nil {
		return int(p.threshA[i])
	}
	if p.occC != nil {
		if p.threshTab != nil {
			return int(p.threshTab[p.occAt(i)])
		}
		return theory.Threshold(p.tauOf[i], p.occAt(i))
	}
	return p.thresh
}

// PlusCount returns the maintained count of +1 agents in N(i).
func (p *Process) PlusCount(i int) int { return p.count(i) }

// SameCount returns the number of agents in N(u) sharing u's type,
// including u itself. Vacant sites hold no agent and return 0.
func (p *Process) SameCount(i int) int {
	if !p.bits.OccupiedBit(i) {
		return 0
	}
	if p.bits.Bit(i) {
		return p.count(i)
	}
	return p.occAt(i) - p.count(i)
}

// Happy reports whether the agent at site i is happy: s(u) >= tau.
// Vacant sites are vacuously happy.
func (p *Process) Happy(i int) bool {
	if !p.bits.OccupiedBit(i) {
		return true
	}
	return p.SameCount(i) >= p.threshAt(i)
}

// Flippable reports whether site i is an admissible flip. Vacant
// sites are never flippable.
func (p *Process) Flippable(i int) bool {
	if !p.bits.OccupiedBit(i) {
		return false
	}
	same := p.SameCount(i)
	th := p.threshAt(i)
	return same < th && p.occAt(i)-same+1 >= th
}

// FlippableCount returns the number of currently admissible flips.
func (p *Process) FlippableCount() int { return p.flippable.Len() }

// UnhappyCount returns the number of currently unhappy agents.
func (p *Process) UnhappyCount() int { return p.nUnhappy }

// Agents returns the number of occupied sites.
func (p *Process) Agents() int { return p.agents }

// HappyFraction returns the fraction of happy agents (over occupied
// sites; a lattice with no agents is vacuously fully happy).
func (p *Process) HappyFraction() float64 {
	if p.agents == 0 {
		return 1
	}
	return 1 - float64(p.nUnhappy)/float64(p.agents)
}

// Fixated reports whether the process has terminated.
func (p *Process) Fixated() bool { return p.flippable.Len() == 0 }

// refreshSite recomputes the classification of site j from its current
// count c and spin, and updates the unhappy bitset and flippable set —
// the same transition the reference engine's refresh performs, applied
// only to sites whose count crossed a classification boundary. Vacant
// sites are neither unhappy nor flippable.
func (p *Process) refreshSite(j, c int) {
	if j < p.ownLo || j >= p.ownHi {
		// Shard routing: the site belongs to a neighboring strip. The
		// deterministic protocol defers it to the merge barrier; the
		// free-running protocol re-derives it on the owning shard (whose
		// lock the caller holds).
		if g := p.grp; g != nil && g.free {
			g.owner(j).refreshSite(j, c)
		}
		return
	}
	var unhappy, flippable bool
	if p.threshA != nil || p.occC != nil {
		if p.bits.OccupiedBit(j) {
			occ, th := p.occAt(j), p.threshAt(j)
			if p.bits.Bit(j) {
				unhappy = c < th
				flippable = unhappy && c <= occ+1-th
			} else {
				unhappy = c > occ-th
				flippable = unhappy && c >= th-1
			}
		}
	} else if p.bits.Bit(j) {
		unhappy = c < p.thresh
		flippable = unhappy && c <= p.nbhd+1-p.thresh
	} else {
		unhappy = c > p.nbhd-p.thresh
		flippable = unhappy && c >= p.thresh-1
	}
	wi, bm := j>>6, uint64(1)<<uint(j&63)
	toggled := (p.unhappy[wi]&bm != 0) != unhappy
	if toggled {
		p.unhappy[wi] ^= bm
		if unhappy {
			p.nUnhappy++
		} else {
			p.nUnhappy--
		}
	}
	if p.track && (toggled || j == p.flipSite) {
		// The swap and relocation wrappers replay set maintenance over
		// these sites in this exact (reference window-visit) order.
		p.changed.Append(int32(j))
	}
	if !p.relocating {
		p.flippable.Update(j-p.sampBase, flippable)
	}
}

// updateSegment applies the ±1 count update to columns [a, b] of row y
// (no wrap within a segment) and refreshes, in ascending column order,
// every site whose new count sits on a classification boundary.
// forceX, when in [a, b], is unconditionally refreshed at its column
// position — the flipped site changes class by spin, not by count.
func (p *Process) updateSegment(y, a, b int, add bool, vals *[4]uint64, forceX int) {
	base := y * p.cpr
	row := y * p.n
	w0, w1 := a>>2, b>>2
	fk := -1
	var fbit uint64
	if forceX >= a && forceX <= b {
		fk = forceX >> 2
		fbit = 0x8000 << uint(16*(forceX&3))
	}
	v0, v1, v2, v3 := vals[0], vals[1], vals[2], vals[3]
	for k := w0; k <= w1; k++ {
		am := uint64(laneOnes)
		if k == w0 || k == w1 {
			lo, hi := 0, 3
			if k == w0 {
				lo = a & 3
			}
			if k == w1 {
				hi = b & 3
			}
			am = addMask[lo][hi]
		}
		idx := base + k
		cw := p.counts[idx]
		if add {
			cw += am
		} else {
			cw -= am
		}
		p.counts[idx] = cw
		// SWAR zero-lane scan of cw against the four boundary values.
		// With lanes always <= 0x7fff the scan never misses an equal
		// lane; borrow propagation can flag a non-matching neighbor
		// lane, which is harmless because refreshSite is a no-op when
		// the classification did not change.
		x0 := cw ^ v0
		x1 := cw ^ v1
		x2 := cw ^ v2
		x3 := cw ^ v3
		flags := ((x0 - laneOnes) & ^x0) | ((x1 - laneOnes) & ^x1) |
			((x2 - laneOnes) & ^x2) | ((x3 - laneOnes) & ^x3)
		flags &= am << 15
		if k == fk {
			flags |= fbit
		}
		for flags != 0 {
			l := bits.TrailingZeros64(flags) >> 4
			p.refreshSite(row+k<<2+l, int(cw>>uint(16*l)&0xffff))
			flags &= flags - 1
		}
	}
}

// updateSegmentTab is the scenario variant of updateSegment: instead
// of four lane-broadcast boundary values shared by every site, each
// count word scans against its own four boundary-table words (lane l
// of tab[4*idx+s] holds the s-th boundary value of the site in lane
// l). Everything else — the SWAR ±1 add, the zero-lane scan with its
// harmless borrow false-positives, the ascending refresh order — is
// identical.
func (p *Process) updateSegmentTab(y, a, b int, add bool, tab []uint64, forceX int) {
	base := y * p.cpr
	row := y * p.n
	w0, w1 := a>>2, b>>2
	fk := -1
	var fbit uint64
	if forceX >= a && forceX <= b {
		fk = forceX >> 2
		fbit = 0x8000 << uint(16*(forceX&3))
	}
	for k := w0; k <= w1; k++ {
		am := uint64(laneOnes)
		if k == w0 || k == w1 {
			lo, hi := 0, 3
			if k == w0 {
				lo = a & 3
			}
			if k == w1 {
				hi = b & 3
			}
			am = addMask[lo][hi]
		}
		idx := base + k
		cw := p.counts[idx]
		if add {
			cw += am
		} else {
			cw -= am
		}
		p.counts[idx] = cw
		t := tab[4*idx : 4*idx+4 : 4*idx+4]
		x0 := cw ^ t[0]
		x1 := cw ^ t[1]
		x2 := cw ^ t[2]
		x3 := cw ^ t[3]
		flags := ((x0 - laneOnes) & ^x0) | ((x1 - laneOnes) & ^x1) |
			((x2 - laneOnes) & ^x2) | ((x3 - laneOnes) & ^x3)
		flags &= am << 15
		if k == fk {
			flags |= fbit
		}
		for flags != 0 {
			l := bits.TrailingZeros64(flags) >> 4
			p.refreshSite(row+k<<2+l, int(cw>>uint(16*l)&0xffff))
			flags &= flags - 1
		}
	}
}

// segment applies the ±1 count update and boundary scan to columns
// [a, b] of row y, routing to the broadcast scan (default scenario) or
// the per-site table scan.
func (p *Process) segment(y, a, b int, add bool, forceX int) {
	if p.upTab == nil {
		vals := &p.downVals
		if add {
			vals = &p.upVals
		}
		p.updateSegment(y, a, b, add, vals, forceX)
		return
	}
	tab := p.downTab
	if add {
		tab = p.upTab
	}
	p.updateSegmentTab(y, a, b, add, tab, forceX)
}

// applyFlip flips site i and updates counts and set membership of every
// affected site, visiting rows and columns in the same order as the
// reference engine — wrapped on the torus, clamped at the edges under
// the open boundary — so the flippable slice evolves identically.
func (p *Process) applyFlip(i int) {
	if p.relocating {
		panic("fastglauber: flip under the relocation dynamic (boundary tables are not built)")
	}
	n, w := p.n, p.w
	x0, y0 := i%n, i/n
	plus := p.bits.FlipBit(i)
	if plus {
		p.lat.SetAt(i, grid.Plus)
	} else {
		p.lat.SetAt(i, grid.Minus)
	}
	p.flipSite = i
	if p.open {
		xlo, xhi := x0-w, x0+w
		if xlo < 0 {
			xlo = 0
		}
		if xhi > n-1 {
			xhi = n - 1
		}
		for dy := -w; dy <= w; dy++ {
			y := y0 + dy
			if y < 0 || y >= n {
				continue
			}
			forceX := -1
			if dy == 0 {
				forceX = x0
			}
			p.segment(y, xlo, xhi, plus, forceX)
		}
		p.flipSite = -1
		return
	}
	xlo := x0 - w
	if xlo < 0 {
		xlo += n
	}
	width := 2*w + 1
	for dy := -w; dy <= w; dy++ {
		y := y0 + dy
		if y < 0 {
			y += n
		} else if y >= n {
			y -= n
		}
		forceX := -1
		if dy == 0 {
			forceX = x0
		}
		if xlo+width <= n {
			p.segment(y, xlo, xlo+width-1, plus, forceX)
		} else {
			p.segment(y, xlo, n-1, plus, forceX)
			p.segment(y, 0, xlo+width-1-n, plus, forceX)
		}
	}
	p.flipSite = -1
}

// ForceFlip flips site i unconditionally and updates all bookkeeping,
// mirroring the reference engine's ForceFlip.
func (p *Process) ForceFlip(i int) { p.applyFlip(i) }

// Step performs one effective event with the exact random-source
// consumption of the reference engine: Exp(k) clock advance, then a
// uniform pick from the flippable slice.
func (p *Process) Step() (site int, ok bool) {
	k := p.flippable.Len()
	if k == 0 {
		return 0, false
	}
	p.time += p.src.ExpRate(float64(k))
	i := int(p.flippable.Sample(p.src)) + p.sampBase
	p.applyFlip(i)
	p.flips++
	return i, true
}

// Run advances the process until fixation or until maxFlips additional
// flips have been performed (maxFlips <= 0 means no limit).
func (p *Process) Run(maxFlips int64) (performed int64, fixated bool) {
	for maxFlips <= 0 || performed < maxFlips {
		if _, ok := p.Step(); !ok {
			return performed, true
		}
		performed++
	}
	return performed, p.Fixated()
}

// Phi returns the paper's Lyapunov function, recomputed from the
// maintained counts in O(n^2).
func (p *Process) Phi() int64 {
	var phi int64
	for i := 0; i < p.n*p.n; i++ {
		phi += int64(p.SameCount(i))
	}
	return phi
}

// MaxFlipsBound returns the a-priori Lyapunov bound on total flips.
func (p *Process) MaxFlipsBound() int64 {
	return int64(p.nbhd) * int64(p.n) * int64(p.n) / 2
}

// CheckInvariants verifies the packed state against brute-force
// recomputation and against the reference mirror lattice; it returns a
// descriptive error on the first mismatch.
func (p *Process) CheckInvariants() error {
	if err := p.bits.EqualLattice(p.lat); err != nil {
		return err
	}
	fresh := p.bits.PlusWindowCounts(p.w, p.open)
	ref := p.lat.PlusWindowCounts(p.w, p.open)
	if len(ref) != len(fresh) {
		return fmt.Errorf("packed window count length %d, reference recount length %d", len(fresh), len(ref))
	}
	for i := range ref {
		if ref[i] != fresh[i] {
			return fmt.Errorf("packed window count[%d] = %d, reference recount %d", i, fresh[i], ref[i])
		}
	}
	if got := p.lat.CountOccupied(); got != p.agents {
		return fmt.Errorf("agents = %d, want %d", p.agents, got)
	}
	if p.occA != nil {
		freshOcc := p.lat.OccupiedWindowCounts(p.w, p.open)
		for i := range freshOcc {
			if p.occA[i] != freshOcc[i] {
				return fmt.Errorf("occ[%d] = %d, want %d", i, p.occA[i], freshOcc[i])
			}
			if want := int32(theory.Threshold(p.tauAt(i), int(freshOcc[i]))); p.threshA[i] != want {
				return fmt.Errorf("threshA[%d] = %d, want %d", i, p.threshA[i], want)
			}
		}
	}
	if p.occC != nil {
		// Thresholds are derived from these lanes, so verifying the
		// lanes verifies the thresholds with them.
		freshOcc := p.lat.OccupiedWindowCounts(p.w, p.open)
		for i := range freshOcc {
			if got := int32(p.occAt(i)); got != freshOcc[i] {
				return fmt.Errorf("occ lane[%d] = %d, want %d", i, got, freshOcc[i])
			}
		}
	}
	unhappyCount := 0
	wantFlippable := make([]bool, p.n*p.n)
	for i := 0; i < p.n*p.n; i++ {
		if got, want := p.count(i), int(fresh[i]); got != want {
			return fmt.Errorf("count[%d] = %d, want %d", i, got, want)
		}
		var unhappy bool
		if p.bits.OccupiedBit(i) {
			same := p.SameCount(i)
			th := p.threshAt(i)
			unhappy = same < th
			wantFlippable[i] = unhappy && p.occAt(i)-same+1 >= th
		}
		if got := p.unhappy[i>>6]&(1<<uint(i&63)) != 0; got != unhappy {
			return fmt.Errorf("unhappy[%d] = %v, want %v", i, got, unhappy)
		}
		if unhappy {
			unhappyCount++
		}
	}
	if unhappyCount != p.nUnhappy {
		return fmt.Errorf("nUnhappy = %d, want %d", p.nUnhappy, unhappyCount)
	}
	if p.relocating {
		// The relocation engine never flips in place: its flip sampler is
		// deliberately unmaintained and must have stayed empty.
		return p.flippable.CheckInvariants("flippable", func(int) bool { return false })
	}
	return p.flippable.CheckInvariants("flippable", func(i int) bool { return wantFlippable[i] })
}
