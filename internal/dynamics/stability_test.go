package dynamics

import (
	"testing"
	"testing/quick"

	"gridseg/internal/grid"
	"gridseg/internal/rng"
)

// A fixed point is intrinsically stable: re-instantiating the process
// over the fixated lattice finds no admissible flip, for arbitrary
// seeds and intolerances on both sides of 1/2.
func TestQuickFixedPointStability(t *testing.T) {
	f := func(seed uint64, tauRaw uint8) bool {
		tau := 0.35 + float64(tauRaw%30)/100 // 0.35..0.64
		lat := grid.Random(16, 0.5, rng.New(seed))
		p, err := New(lat, 2, tau, rng.New(seed+1))
		if err != nil {
			return false
		}
		if _, fixated := p.Run(0); !fixated {
			return false
		}
		fresh, err := New(lat, 2, tau, rng.New(seed+2))
		if err != nil {
			return false
		}
		return fresh.FlippableCount() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Global spin flip is a symmetry of the model at p = 1/2: the flipped
// configuration has the same unhappy and flippable counts.
func TestGlobalFlipSymmetry(t *testing.T) {
	lat := grid.Random(20, 0.5, rng.New(77))
	flipped := lat.Clone()
	for i := 0; i < flipped.Sites(); i++ {
		flipped.SetAt(i, flipped.SpinAt(i).Opposite())
	}
	a, err := New(lat, 2, 0.45, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(flipped, 2, 0.45, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if a.UnhappyCount() != b.UnhappyCount() {
		t.Fatalf("unhappy counts differ under global flip: %d vs %d",
			a.UnhappyCount(), b.UnhappyCount())
	}
	if a.FlippableCount() != b.FlippableCount() {
		t.Fatalf("flippable counts differ under global flip: %d vs %d",
			a.FlippableCount(), b.FlippableCount())
	}
	for i := 0; i < lat.Sites(); i++ {
		if a.Happy(i) != b.Happy(i) {
			t.Fatalf("happiness at %d differs under global flip", i)
		}
	}
}
