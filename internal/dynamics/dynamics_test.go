package dynamics

import (
	"testing"
	"testing/quick"

	"gridseg/internal/geom"
	"gridseg/internal/grid"
	"gridseg/internal/rng"
)

func mustProcess(t *testing.T, lat *grid.Lattice, w int, tau float64, seed uint64) *Process {
	t.Helper()
	p, err := New(lat, w, tau, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewValidation(t *testing.T) {
	lat := grid.New(9, grid.Plus)
	cases := []struct {
		name string
		f    func() (*Process, error)
	}{
		{"zero horizon", func() (*Process, error) { return New(lat, 0, 0.5, rng.New(1)) }},
		{"oversized horizon", func() (*Process, error) { return New(lat, 5, 0.5, rng.New(1)) }},
		{"negative tau", func() (*Process, error) { return New(lat, 1, -0.1, rng.New(1)) }},
		{"tau above one", func() (*Process, error) { return New(lat, 1, 1.1, rng.New(1)) }},
		{"nil source", func() (*Process, error) { return New(lat, 1, 0.5, nil) }},
	}
	for _, c := range cases {
		if _, err := c.f(); err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
}

func TestAccessors(t *testing.T) {
	lat := grid.New(9, grid.Plus)
	p := mustProcess(t, lat, 2, 0.42, 1)
	if p.Horizon() != 2 || p.NeighborhoodSize() != 25 {
		t.Fatal("horizon accessors broken")
	}
	if p.Threshold() != 11 { // ceil(0.42*25) = 11
		t.Fatalf("threshold = %d, want 11", p.Threshold())
	}
	if p.Tau() != 11.0/25.0 {
		t.Fatalf("tau = %v", p.Tau())
	}
	if p.Lattice() != lat {
		t.Fatal("Lattice must return the underlying lattice")
	}
}

func TestMonochromaticIsFixated(t *testing.T) {
	p := mustProcess(t, grid.New(9, grid.Plus), 1, 0.99, 1)
	if !p.Fixated() || p.UnhappyCount() != 0 || p.HappyFraction() != 1 {
		t.Fatal("monochromatic lattice must be happy and fixated")
	}
	if _, ok := p.Step(); ok {
		t.Fatal("Step on fixated process must return ok=false")
	}
	if n, fix := p.Run(0); n != 0 || !fix {
		t.Fatal("Run on fixated process must do nothing")
	}
}

func TestZeroTauEveryoneHappy(t *testing.T) {
	lat := grid.Random(9, 0.5, rng.New(1))
	p := mustProcess(t, lat, 1, 0, 2)
	if p.UnhappyCount() != 0 || !p.Fixated() {
		t.Fatal("tau = 0 means everyone is happy")
	}
}

// A single + agent in a sea of - at tau = 1/2, w = 1: the + agent has
// same-count 1 < 5 and is the unique flippable agent; its neighbors have
// same-count 8 and are happy. One step reaches the all-minus fixed point.
func TestSingleDissenterHandCase(t *testing.T) {
	lat := grid.New(7, grid.Minus)
	center := geom.Point{X: 3, Y: 3}
	lat.Set(center, grid.Plus)
	p := mustProcess(t, lat, 1, 0.5, 3)
	if p.FlippableCount() != 1 || p.UnhappyCount() != 1 {
		t.Fatalf("flippable=%d unhappy=%d, want 1 and 1", p.FlippableCount(), p.UnhappyCount())
	}
	site, ok := p.Step()
	if !ok || site != lat.Torus().Index(center) {
		t.Fatalf("step flipped site %d, want the dissenter", site)
	}
	if !p.Fixated() || lat.CountPlus() != 0 {
		t.Fatal("process must fixate at the all-minus configuration")
	}
	if p.Flips() != 1 {
		t.Fatalf("Flips = %d, want 1", p.Flips())
	}
	if p.Time() <= 0 {
		t.Fatal("time must advance")
	}
}

func TestInitialBookkeepingMatchesBruteForce(t *testing.T) {
	lat := grid.Random(16, 0.5, rng.New(5))
	p := mustProcess(t, lat, 2, 0.45, 6)
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInvariantsHoldDuringRun(t *testing.T) {
	lat := grid.Random(20, 0.5, rng.New(7))
	p := mustProcess(t, lat, 2, 0.45, 8)
	for step := 0; step < 200; step++ {
		if _, ok := p.Step(); !ok {
			break
		}
		if step%20 == 0 {
			if err := p.CheckInvariants(); err != nil {
				t.Fatalf("after %d steps: %v", step+1, err)
			}
		}
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// The paper's Lyapunov function Phi must strictly increase with every
// admissible flip; this is the termination argument of Section II.A.
func TestLyapunovStrictlyIncreases(t *testing.T) {
	lat := grid.Random(16, 0.5, rng.New(9))
	p := mustProcess(t, lat, 2, 0.48, 10)
	prev := p.Phi()
	for i := 0; i < 300; i++ {
		if _, ok := p.Step(); !ok {
			break
		}
		phi := p.Phi()
		if phi <= prev {
			t.Fatalf("Phi did not increase: %d -> %d at flip %d", prev, phi, i+1)
		}
		prev = phi
	}
}

// Super-unhappy semantics for tau > 1/2: Phi must still strictly increase
// and flips must still be admissible only when they make the agent happy.
func TestLyapunovIncreasesAboveHalf(t *testing.T) {
	lat := grid.Random(16, 0.5, rng.New(11))
	p := mustProcess(t, lat, 1, 0.6, 12)
	prev := p.Phi()
	for i := 0; i < 300; i++ {
		site, ok := p.Step()
		if !ok {
			break
		}
		if !p.Happy(site) {
			t.Fatalf("flip %d left the agent unhappy", i+1)
		}
		phi := p.Phi()
		if phi <= prev {
			t.Fatalf("Phi did not increase above half: %d -> %d", prev, phi)
		}
		prev = phi
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRunTerminatesWithinLyapunovBound(t *testing.T) {
	lat := grid.Random(24, 0.5, rng.New(13))
	p := mustProcess(t, lat, 2, 0.45, 14)
	bound := p.MaxFlipsBound()
	performed, fixated := p.Run(0)
	if !fixated {
		t.Fatal("Run(0) must reach fixation")
	}
	if performed > bound {
		t.Fatalf("performed %d flips, Lyapunov bound %d", performed, bound)
	}
	if p.FlippableCount() != 0 {
		t.Fatal("fixated process must have no flippable agents")
	}
	// At fixation every unhappy agent must be unable to become happy.
	for i := 0; i < lat.Sites(); i++ {
		if p.Flippable(i) {
			t.Fatalf("site %d still flippable after fixation", i)
		}
	}
}

func TestRunRespectsMaxFlips(t *testing.T) {
	lat := grid.Random(24, 0.5, rng.New(15))
	p := mustProcess(t, lat, 2, 0.45, 16)
	performed, _ := p.Run(5)
	if performed > 5 {
		t.Fatalf("Run(5) performed %d flips", performed)
	}
}

func TestDeterministicReplay(t *testing.T) {
	latA := grid.Random(16, 0.5, rng.New(17))
	latB := latA.Clone()
	a := mustProcess(t, latA, 2, 0.45, 18)
	b := mustProcess(t, latB, 2, 0.45, 18)
	a.Run(0)
	b.Run(0)
	if !latA.Equal(latB) {
		t.Fatal("identical seeds must give identical fixed points")
	}
	if a.Flips() != b.Flips() || a.Time() != b.Time() {
		t.Fatal("identical seeds must give identical statistics")
	}
}

// For tau < 1/2 every unhappy agent is flippable (the paper's first
// observation in Section II.A).
func TestBelowHalfUnhappyEqualsFlippable(t *testing.T) {
	lat := grid.Random(20, 0.5, rng.New(19))
	p := mustProcess(t, lat, 2, 0.42, 20)
	if p.UnhappyCount() != p.FlippableCount() {
		t.Fatalf("unhappy=%d flippable=%d must match below tau=1/2",
			p.UnhappyCount(), p.FlippableCount())
	}
}

func TestHappyAs(t *testing.T) {
	lat := grid.New(7, grid.Minus)
	p := mustProcess(t, lat, 1, 0.5, 21)
	c := lat.Torus().Index(geom.Point{X: 3, Y: 3})
	// All minus: a hypothetical + at any site would have same-count 1 < 5.
	if p.HappyAs(c, grid.Plus) {
		t.Fatal("+ probe must be unhappy in all-minus sea")
	}
	if !p.HappyAs(c, grid.Minus) {
		t.Fatal("- probe must be happy in all-minus sea")
	}
	// Occupant spin must not bias the probe: flip the site to + and the
	// + probe count must equal the occupant's own count.
	p.ForceFlip(c)
	if got, want := p.HappyAs(c, grid.Plus), p.Happy(c); got != want {
		t.Fatal("HappyAs(+) must agree with Happy for a + occupant")
	}
}

func TestForceFlipKeepsBookkeeping(t *testing.T) {
	lat := grid.Random(16, 0.5, rng.New(23))
	p := mustProcess(t, lat, 2, 0.45, 24)
	for i := 0; i < 20; i++ {
		p.ForceFlip((i * 13) % lat.Sites())
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestTimeMonotone(t *testing.T) {
	lat := grid.Random(16, 0.5, rng.New(25))
	p := mustProcess(t, lat, 2, 0.45, 26)
	prev := 0.0
	for i := 0; i < 100; i++ {
		if _, ok := p.Step(); !ok {
			break
		}
		if p.Time() <= prev {
			t.Fatal("continuous time must strictly increase")
		}
		prev = p.Time()
	}
}

// Property test: after a bounded random evolution on random instances,
// all bookkeeping matches brute force and Phi has not decreased.
func TestQuickEvolutionInvariants(t *testing.T) {
	f := func(seed uint64, tauRaw uint8, wRaw uint8) bool {
		n := 12
		w := 1 + int(wRaw%2)                  // 1..2
		tau := 0.3 + float64(tauRaw%40)/100.0 // 0.30..0.69
		lat := grid.Random(n, 0.5, rng.New(seed))
		p, err := New(lat, w, tau, rng.New(seed+1))
		if err != nil {
			return false
		}
		phi0 := p.Phi()
		p.Run(50)
		if err := p.CheckInvariants(); err != nil {
			t.Logf("invariants: %v", err)
			return false
		}
		return p.Phi() >= phi0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkStep(b *testing.B) {
	lat := grid.Random(256, 0.5, rng.New(1))
	p, err := New(lat, 4, 0.45, rng.New(2))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := p.Step(); !ok {
			b.StopTimer()
			lat = grid.Random(256, 0.5, rng.New(uint64(i)))
			p, _ = New(lat, 4, 0.45, rng.New(uint64(i+1)))
			b.StartTimer()
		}
	}
}

func BenchmarkNewProcess(b *testing.B) {
	lat := grid.Random(256, 0.5, rng.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := New(lat.Clone(), 4, 0.45, rng.New(2)); err != nil {
			b.Fatal(err)
		}
	}
}
