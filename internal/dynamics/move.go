package dynamics

import (
	"errors"

	"gridseg/internal/grid"
	"gridseg/internal/rng"
	"gridseg/internal/sampleset"
	"gridseg/internal/theory"
)

// Move is the relocation dynamic enabled by vacancy scenarios: an
// unhappy agent moves into a vacant site if it would be happy there —
// the Schelling-style "move into empty houses" dynamic studied (as the
// physical, Kawasaki-like conserved variant) by Stauffer and Solomon.
// The number of agents of each type is conserved; vacancies move in
// the opposite direction. Happiness follows the scenario-generalized
// definition of Process: same(u) >= ceil(tau_u * occ(u)) over the
// occupied part of the (possibly clamped) window, with intolerance
// attached to locations (quenched disorder), not carried by movers.
//
// Like the Kawasaki baseline there is no Lyapunov guarantee under pair
// sampling, so runs are bounded by an attempt budget with a
// consecutive-failure heuristic.
type Move struct {
	p *Process
	// Indexed samplers over the unhappy agents (both types) and the
	// vacant sites (see internal/sampleset); sampling is uniform over
	// each, and the iteration order is part of the bit-identity
	// contract with the fast engine.
	unhappySet *sampleset.Set
	vacantSet  *sampleset.Set
	moves      int64
	attempts   int64
}

// NewMove creates a relocation process over the lattice, which must
// contain at least one vacant site (build it with grid.RandomScenario
// and rho > 0). The lattice is mutated in place.
func NewMove(lat *grid.Lattice, w int, tauTilde float64, sc Scenario, src *rng.Source) (*Move, error) {
	if !lat.HasVacancies() {
		return nil, errors.New("dynamics: the move dynamic needs vacant sites (rho > 0)")
	}
	p, err := NewScenario(lat, w, tauTilde, sc, src)
	if err != nil {
		return nil, err
	}
	m := &Move{
		p:          p,
		unhappySet: sampleset.New(lat.Sites()),
		vacantSet:  sampleset.New(lat.Sites()),
	}
	for i := 0; i < lat.Sites(); i++ {
		m.refreshSets(i)
	}
	return m, nil
}

// Process returns the underlying count-tracking process (read-only use).
func (m *Move) Process() *Process { return m.p }

// Engine returns the underlying process as the shared engine contract
// (the accessor of MoveEngine).
func (m *Move) Engine() Engine { return m.p }

// Moves returns the number of successful relocations so far.
func (m *Move) Moves() int64 { return m.moves }

// Attempts returns the number of attempted relocations so far.
func (m *Move) Attempts() int64 { return m.attempts }

// Counts returns the numbers of unhappy agents and vacant sites.
func (m *Move) Counts() (unhappy, vacant int) {
	return m.unhappySet.Len(), m.vacantSet.Len()
}

// refreshSets updates site i's membership in the unhappy-agent and
// vacant-site samples.
func (m *Move) refreshSets(i int) {
	occupied := m.p.lat.OccupiedAt(i)
	m.unhappySet.Update(i, occupied && !m.p.Happy(i))
	m.vacantSet.Update(i, !occupied)
}

// relocate moves the agent at u to the vacant site v, refreshing both
// sample sets over the two affected windows.
func (m *Move) relocate(u, v int) grid.Spin {
	s := m.p.remove(u)
	m.p.place(v, s)
	m.p.forEachWindowSite(u, m.refreshSets)
	m.p.forEachWindowSite(v, m.refreshSets)
	return s
}

// wouldBeHappy reports whether the agent of type s currently at u
// would be happy at the vacant site v after its departure (so an agent
// cannot count its old self in an overlapping window), computed from
// the maintained counts without mutating any state. It must agree
// exactly with relocating and asking Happy(v) — the property test in
// move's suite pins the equivalence — because rejected attempts vastly
// outnumber accepted ones near quasi-fixation, and this read-only form
// costs O(1) instead of four window sweeps.
func (m *Move) wouldBeHappy(u, v int, s grid.Spin) bool {
	p := m.p
	occ := int(p.occ[v])
	plus := int(p.plus[v])
	if p.inWindow(v, u) {
		occ--
		if s == grid.Plus {
			plus--
		}
	}
	occ++ // the mover itself joins N(v)
	same := occ - plus
	if s == grid.Plus {
		same = plus + 1
	}
	return same >= theory.Threshold(p.tauAt(v), occ)
}

// StepAttempt samples one unhappy agent and one vacant site uniformly
// at random and relocates the agent iff it would be happy at the new
// location (evaluated after its departure). It returns moved=false
// with done=true when no unhappy agent remains.
func (m *Move) StepAttempt() (moved, done bool) {
	if m.unhappySet.Len() == 0 {
		return false, true
	}
	m.attempts++
	u := int(m.unhappySet.Sample(m.p.src))
	v := int(m.vacantSet.Sample(m.p.src))
	if !m.wouldBeHappy(u, v, m.p.lat.SpinAt(u)) {
		return false, false
	}
	m.relocate(u, v)
	m.moves++
	return true, false
}

// Run performs relocation attempts until no unhappy agent remains,
// until maxAttempts have been made, or until failStreak consecutive
// attempts fail. It returns the number of successful moves performed
// by this call and whether the process reached the no-unhappy state.
func (m *Move) Run(maxAttempts, failStreak int64) (performed int64, done bool) {
	if maxAttempts <= 0 {
		return 0, false
	}
	var streak int64
	for a := int64(0); a < maxAttempts; a++ {
		moved, noUnhappy := m.StepAttempt()
		if noUnhappy {
			return performed, true
		}
		if moved {
			performed++
			streak = 0
		} else {
			streak++
			if failStreak > 0 && streak >= failStreak {
				return performed, false
			}
		}
	}
	return performed, false
}

// CheckInvariants verifies the sample sets against brute force in
// addition to the underlying process invariants.
func (m *Move) CheckInvariants() error {
	if err := m.p.CheckInvariants(); err != nil {
		return err
	}
	if err := m.unhappySet.CheckInvariants("unhappy", func(i int) bool {
		return m.p.lat.OccupiedAt(i) && !m.p.Happy(i)
	}); err != nil {
		return err
	}
	return m.vacantSet.CheckInvariants("vacant", func(i int) bool {
		return !m.p.lat.OccupiedAt(i)
	})
}
