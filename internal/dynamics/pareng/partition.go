// Package pareng is the domain-decomposed parallel trajectory engine:
// it partitions the lattice into horizontal strips, runs the bit-packed
// Glauber updates of internal/dynamics/fastglauber concurrently on
// non-adjacent strips, and merges the cross-strip effects so the
// process stays a well-defined kinetic Monte Carlo trajectory.
//
// A flip only affects happiness inside the (2w+1)^2 window, so updates
// on sites more than 2w rows apart commute; the strip layout makes that
// independence structural. Two protocols share the strip machinery:
//
//   - The deterministic protocol (the default) runs synchronous
//     sublattice KMC: cycles of two phases (even strips, then odd
//     strips), each active strip advancing its local clock over a fixed
//     horizon with its own per-(cycle, phase, strip) random stream, and
//     a serial merge barrier re-deriving the strip-boundary bands in a
//     canonical order. The trajectory is a pure function of (seed,
//     parameters, strip count) — the worker count only changes how the
//     strips of a phase are scheduled, never the result.
//
//   - The free-running protocol trades the fixed phase schedule for
//     throughput: workers claim strips under neighbor locks and apply
//     cross-strip effects immediately. Event order then depends on
//     scheduling, so only distributional guarantees remain (Phi
//     monotonicity, exact conservation laws, fixation properties);
//     the statistical-equivalence suite pins them.
//
// With one strip the engine delegates to the sequential fast engine
// outright and is bit-identical to it (and to the reference engine)
// for every seed and scenario — the configuration difftest and the
// sweep cache rely on.
package pareng

import (
	"errors"
	"fmt"
)

// MaxStrips caps the automatic strip count. The cap is a fixed
// constant — never derived from the machine — so auto-stripped
// trajectories are reproducible everywhere.
const MaxStrips = 16

// Partition is the strip decomposition of an n x n lattice: strips of
// near-equal height owning contiguous row ranges, each with a halo of
// the foreign rows its sites' windows read. Construct with
// NewPartition.
type Partition struct {
	// N and W are the lattice side and horizon.
	N, W int
	// Strips is the number of strips.
	Strips int
	// Open marks the hard-wall boundary: halos clamp at the grid edges
	// instead of wrapping.
	Open bool
	// bounds are the row cuts: strip k owns rows [bounds[k], bounds[k+1]).
	bounds []int
}

// NewPartition builds the strip partition. Beyond basic validity
// (1 <= strips, 2w+1 <= n), a multi-strip partition must satisfy the
// concurrency-safety minima of the shard layer: every strip at least
// max(2w, ceil(64/n)) rows tall — so strips two apart never touch the
// same memory word — and an even strip count on the torus, where the
// first and last strips are adjacent across the seam.
func NewPartition(n, w, strips int, open bool) (Partition, error) {
	if w < 1 {
		return Partition{}, errors.New("pareng: horizon must be >= 1")
	}
	if 2*w+1 > n {
		return Partition{}, fmt.Errorf("pareng: neighborhood side %d exceeds lattice side %d", 2*w+1, n)
	}
	if strips < 1 {
		return Partition{}, errors.New("pareng: strip count must be >= 1")
	}
	pt := Partition{N: n, W: w, Strips: strips, Open: open}
	if strips == 1 {
		pt.bounds = []int{0, n}
		return pt, nil
	}
	if !open && strips%2 != 0 {
		return Partition{}, fmt.Errorf("pareng: %d strips on the torus: the phase schedule needs an even count (the first and last strips are adjacent)", strips)
	}
	minH := 2 * w
	if need := (63 + n) / n; need > minH {
		minH = need
	}
	if n/strips < minH {
		return Partition{}, fmt.Errorf("pareng: %d strips of side-%d lattice: strips would be %d rows tall, need >= %d (2w and one bitset word)", strips, n, n/strips, minH)
	}
	pt.bounds = make([]int, strips+1)
	base, rem := n/strips, n%strips
	for k := 0; k < strips; k++ {
		h := base
		if k < rem {
			h++
		}
		pt.bounds[k+1] = pt.bounds[k] + h
	}
	return pt, nil
}

// AutoStrips returns the machine-independent default strip count for a
// side-n, horizon-w lattice: as many strips as the safety minima allow,
// capped at MaxStrips and rounded down to even, or 1 when the lattice
// is too small to decompose (n < 64 or fewer than two valid strips).
func AutoStrips(n, w int) int {
	if w < 1 || n < 64 || 2*w+1 > n {
		return 1
	}
	s := n / (2 * w)
	if s > MaxStrips {
		s = MaxStrips
	}
	s -= s % 2
	if s < 2 {
		return 1
	}
	return s
}

// Bounds returns the row cuts: strip k owns rows [Bounds()[k], Bounds()[k+1]).
func (pt Partition) Bounds() []int { return append([]int(nil), pt.bounds...) }

// OwnedRows returns the half-open row range [lo, hi) owned by strip k.
func (pt Partition) OwnedRows(k int) (lo, hi int) { return pt.bounds[k], pt.bounds[k+1] }

// Owner returns the strip owning row y.
func (pt Partition) Owner(y int) int {
	for k := 1; k < len(pt.bounds); k++ {
		if y < pt.bounds[k] {
			return k - 1
		}
	}
	return pt.Strips - 1
}

// HaloRows returns, in ascending order, the foreign rows whose state
// strip k's sites depend on: every row within Chebyshev distance W of
// an owned row — wrapped on the torus, clamped at the grid edges under
// the open boundary — excluding the owned rows themselves. Together
// with the owned rows this covers exactly the (2W+1)^2 dependency
// region of every owned site.
func (pt Partition) HaloRows(k int) []int {
	lo, hi := pt.OwnedRows(k)
	in := make([]bool, pt.N)
	for d := 1; d <= pt.W; d++ {
		for _, y := range []int{lo - d, hi - 1 + d} {
			if pt.Open {
				if y < 0 || y >= pt.N {
					continue
				}
			} else {
				y = ((y % pt.N) + pt.N) % pt.N
			}
			if y < lo || y >= hi {
				in[y] = true
			}
		}
	}
	var rows []int
	for y, ok := range in {
		if ok {
			rows = append(rows, y)
		}
	}
	return rows
}
