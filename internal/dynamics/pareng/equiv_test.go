package pareng

import (
	"testing"

	"gridseg/internal/dynamics/fastglauber"
	"gridseg/internal/stats"
)

// Statistical-equivalence harness for the batched protocols. The
// deterministic protocol with strips > 1 and the free-running protocol
// are not bit-identical to the sequential engine — they realize
// different trajectories of the same stochastic process — so the
// contract they must keep is distributional: over an ensemble of seeds,
// fixation times and final Phi values must be drawn from the same
// distributions the sequential engine samples. A two-sample
// Kolmogorov-Smirnov test (internal/stats) pins both observables for
// both protocols, and exact per-run conservation checks ride along.
//
// False-positive budget: every comparison uses fixed seeds, so the
// sequential and deterministic-protocol samples are identical on every
// run — those comparisons can only flip if the code changes. The
// free-running samples depend on goroutine scheduling, so their two KS
// p-values are genuinely random per run; with alpha = 1e-3 the chance
// of a spurious CI failure is at most 2e-3 per run (empirically the
// p-values sit far above alpha). Re-seeding the ensemble re-rolls all
// four comparisons at the same 1e-3-per-test budget.
const (
	equivEnsemble = 160
	equivAlpha    = 1e-3
)

// collect runs the case to fixation for every ensemble seed and
// returns the fixation-time and final-Phi samples. build selects the
// engine; it must consume the case's dynamics source exactly like
// gridseg.New does so all engines see identical initial lattices.
func collect(t *testing.T, c scenarioCase, cfg *Config) (times, phis []float64) {
	t.Helper()
	for seed := uint64(1); seed <= equivEnsemble; seed++ {
		lat, dsc, src := c.build(seed)
		agents := 0
		for i := 0; i < c.n*c.n; i++ {
			if lat.OccupiedAt(i) {
				agents++
			}
		}
		var time float64
		var phi int64
		if cfg == nil {
			e, err := fastglauber.NewScenario(lat, c.w, c.tau, dsc, src)
			if err != nil {
				t.Fatal(err)
			}
			if _, fixated := e.Run(0); !fixated {
				t.Fatalf("seed %d: sequential run did not fixate", seed)
			}
			time, phi = e.Time(), e.Phi()
		} else {
			e, err := New(lat, c.w, c.tau, dsc, src, *cfg)
			if err != nil {
				t.Fatal(err)
			}
			if _, fixated := e.Run(0); !fixated {
				t.Fatalf("seed %d: parallel run did not fixate", seed)
			}
			time, phi = e.Time(), e.Phi()
		}
		// Exact conservation: Glauber flips change spins, never
		// occupancy, so the agent count is invariant run by run.
		got := 0
		for i := 0; i < c.n*c.n; i++ {
			if lat.OccupiedAt(i) {
				got++
			}
		}
		if got != agents {
			t.Fatalf("seed %d: agent count changed %d -> %d", seed, agents, got)
		}
		times = append(times, time)
		phis = append(phis, float64(phi))
	}
	return times, phis
}

// TestStatisticalEquivalence compares the deterministic (strips=4) and
// free-running protocols against the sequential fast engine on an
// ensemble of 160 seeds of the paper's default torus scenario, KS-testing
// the fixation-time and final-Phi distributions.
func TestStatisticalEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("ensemble comparison is slow")
	}
	c := scenarioCases[0] // torus, n=64, w=2, tau=0.45
	seqTimes, seqPhis := collect(t, c, nil)
	protocols := []struct {
		name string
		cfg  Config
	}{
		{name: "deterministic", cfg: Config{Workers: 2, Strips: 4}},
		{name: "free", cfg: Config{Workers: 4, Strips: 4, Free: true}},
	}
	for _, p := range protocols {
		t.Run(p.name, func(t *testing.T) {
			parTimes, parPhis := collect(t, c, &p.cfg)
			for _, obs := range []struct {
				name     string
				seq, par []float64
			}{
				{name: "fixation-time", seq: seqTimes, par: parTimes},
				{name: "final-phi", seq: seqPhis, par: parPhis},
			} {
				r, err := stats.KolmogorovSmirnov(obs.seq, obs.par)
				if err != nil {
					t.Fatalf("%s: %v", obs.name, err)
				}
				t.Logf("%s: D = %.4f, p = %.4g", obs.name, r.D, r.P)
				if r.P < equivAlpha {
					t.Errorf("%s distribution diverges from sequential: D = %.4f, p = %.4g < %g", obs.name, r.D, r.P, equivAlpha)
				}
			}
		})
	}
}
