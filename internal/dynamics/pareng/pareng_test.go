package pareng

import (
	"testing"

	"gridseg/internal/dynamics"
	"gridseg/internal/dynamics/fastglauber"
	"gridseg/internal/grid"
	"gridseg/internal/rng"
)

// scenarioCase is a model setting the cross-worker determinism suite
// pins: the paper's default plus one case per topology axis.
type scenarioCase struct {
	name string
	n, w int
	tau  float64
	rho  float64
	open bool
	taus bool // alternating per-site intolerance field
}

var scenarioCases = []scenarioCase{
	{name: "torus", n: 64, w: 2, tau: 0.45},
	{name: "open", n: 64, w: 2, tau: 0.45, open: true},
	{name: "rho", n: 64, w: 2, tau: 0.45, rho: 0.08},
	{name: "taudist", n: 64, w: 2, tau: 0.45, taus: true},
}

// build constructs a fresh lattice and scenario for the case from the
// seed, exactly like gridseg.New splits its root source.
func (c scenarioCase) build(seed uint64) (*grid.Lattice, dynamics.Scenario, *rng.Source) {
	src := rng.New(seed)
	lat := grid.RandomScenario(c.n, 0.5, c.rho, src.Split(1))
	dsc := dynamics.Scenario{Open: c.open}
	if c.taus {
		taus := make([]float64, c.n*c.n)
		for i := range taus {
			if i%2 == 0 {
				taus[i] = 0.35
			} else {
				taus[i] = 0.48
			}
		}
		dsc.Taus = taus
	}
	return lat, dsc, src.Split(2)
}

// fingerprint summarizes an engine's terminal state for equality
// checks across runs.
type fingerprint struct {
	lattice string
	flips   int64
	time    float64
	phi     int64
}

func runToFixation(t *testing.T, c scenarioCase, seed uint64, cfg Config) (*Engine, fingerprint) {
	t.Helper()
	lat, dsc, src := c.build(seed)
	e, err := New(lat, c.w, c.tau, dsc, src, cfg)
	if err != nil {
		t.Fatalf("New(%+v): %v", cfg, err)
	}
	if _, fixated := e.Run(0); !fixated {
		t.Fatalf("Run(0) did not fixate")
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatalf("CheckInvariants after fixation: %v", err)
	}
	return e, fingerprint{lattice: lat.String(), flips: e.Flips(), time: e.Time(), phi: e.Phi()}
}

// TestDeterministicAcrossWorkers pins the deterministic protocol's
// contract: for a fixed seed and strip count, the trajectory is
// bit-identical for every worker count, on every topology scenario.
func TestDeterministicAcrossWorkers(t *testing.T) {
	for _, c := range scenarioCases {
		t.Run(c.name, func(t *testing.T) {
			_, want := runToFixation(t, c, 7, Config{Workers: 1, Strips: 4})
			for _, workers := range []int{2, 4, 8} {
				_, got := runToFixation(t, c, 7, Config{Workers: workers, Strips: 4})
				if got != want {
					t.Fatalf("workers=%d diverged: %+v, want %+v", workers, got, want)
				}
			}
		})
	}
}

// TestStripCountChangesTrajectory documents that the strip count — not
// the worker count — is the trajectory-defining knob: different strip
// counts give different (individually reproducible) trajectories.
func TestStripCountChangesTrajectory(t *testing.T) {
	c := scenarioCases[0]
	_, s4 := runToFixation(t, c, 7, Config{Workers: 2, Strips: 4})
	_, s8 := runToFixation(t, c, 7, Config{Workers: 2, Strips: 8})
	if s4.flips == s8.flips && s4.lattice == s8.lattice {
		t.Fatalf("strips=4 and strips=8 produced identical trajectories; expected distinct batching")
	}
}

// TestDelegationBitIdentical pins the strips=1 contract: the parallel
// engine delegates to the sequential fast engine and replays it
// bit for bit, event by event.
func TestDelegationBitIdentical(t *testing.T) {
	for _, c := range scenarioCases {
		t.Run(c.name, func(t *testing.T) {
			lat, dsc, src := c.build(11)
			par, err := New(lat, c.w, c.tau, dsc, src, Config{Workers: 4, Strips: 1})
			if err != nil {
				t.Fatal(err)
			}
			latSeq, dscSeq, srcSeq := c.build(11)
			seq, err := fastglauber.NewScenario(latSeq, c.w, c.tau, dscSeq, srcSeq)
			if err != nil {
				t.Fatal(err)
			}
			for {
				i, ok := par.Step()
				j, ok2 := seq.Step()
				if ok != ok2 || i != j {
					t.Fatalf("delegation diverged at flip %d: parallel (%d, %v), sequential (%d, %v)", par.Flips(), i, ok, j, ok2)
				}
				if !ok {
					break
				}
				if par.Time() != seq.Time() {
					t.Fatalf("clock diverged at flip %d: %v vs %v", par.Flips(), par.Time(), seq.Time())
				}
			}
			if lat.String() != latSeq.String() {
				t.Fatalf("terminal configurations differ under delegation")
			}
		})
	}
}

// TestPhiMonotone pins the per-flip Lyapunov guarantee in both
// protocols: every flip is admissible at the moment it happens, so Phi
// gains at least 2 per flip — cycle over cycle, not just end to end.
func TestPhiMonotone(t *testing.T) {
	for _, free := range []bool{false, true} {
		name := "deterministic"
		if free {
			name = "free"
		}
		t.Run(name, func(t *testing.T) {
			c := scenarioCases[0]
			lat, dsc, src := c.build(13)
			e, err := New(lat, c.w, c.tau, dsc, src, Config{Workers: 2, Strips: 4, Free: free})
			if err != nil {
				t.Fatal(err)
			}
			phi, flips := e.Phi(), e.Flips()
			for {
				if _, ok := e.Step(); !ok {
					break
				}
				nphi, nflips := e.Phi(), e.Flips()
				if nphi < phi+2*(nflips-flips) {
					t.Fatalf("Phi rose by %d over %d flips, want >= %d", nphi-phi, nflips-flips, 2*(nflips-flips))
				}
				phi, flips = nphi, nflips
			}
		})
	}
}

// TestFreeRunningInvariants runs the free-running protocol with real
// worker concurrency (exercised under -race by make race-stress) and
// checks everything that must survive nondeterministic scheduling:
// genuine fixation, bookkeeping integrity, the Lyapunov gain, exact
// conservation of the vacancy pattern, and the tau <= 1/2 fixation
// property (every agent happy at fixation).
func TestFreeRunningInvariants(t *testing.T) {
	for _, c := range scenarioCases {
		t.Run(c.name, func(t *testing.T) {
			lat, dsc, src := c.build(17)
			occupied := make([]bool, c.n*c.n)
			agents := 0
			for i := range occupied {
				occupied[i] = lat.OccupiedAt(i)
				if occupied[i] {
					agents++
				}
			}
			e, err := New(lat, c.w, c.tau, dsc, src, Config{Workers: 4, Strips: 4, Free: true})
			if err != nil {
				t.Fatal(err)
			}
			phi0 := e.Phi()
			if _, fixated := e.Run(0); !fixated {
				t.Fatal("free run did not fixate")
			}
			if err := e.CheckInvariants(); err != nil {
				t.Fatalf("CheckInvariants: %v", err)
			}
			if !e.Fixated() || e.FlippableCount() != 0 {
				t.Fatal("fixation flag and flippable count disagree")
			}
			if got := e.Phi() - phi0; got < 2*e.Flips() {
				t.Fatalf("Phi gained %d over %d flips, want >= %d", got, e.Flips(), 2*e.Flips())
			}
			got := 0
			for i := range occupied {
				if (lat.OccupiedAt(i)) != occupied[i] {
					t.Fatalf("occupancy of site %d changed under Glauber flips", i)
				}
				if occupied[i] {
					got++
				}
			}
			if got != agents {
				t.Fatalf("agent count changed: %d, want %d", got, agents)
			}
			if !c.taus && c.tau <= 0.5 {
				if e.UnhappyCount() != 0 {
					t.Fatalf("tau=%v <= 1/2 fixation left %d unhappy agents", c.tau, e.UnhappyCount())
				}
			}
		})
	}
}

// TestFreeRunBudget checks the flip budget stops the worker pool near
// the requested count instead of running to fixation.
func TestFreeRunBudget(t *testing.T) {
	c := scenarioCases[0]
	lat, dsc, src := c.build(19)
	e, err := New(lat, c.w, c.tau, dsc, src, Config{Workers: 4, Strips: 4, Free: true})
	if err != nil {
		t.Fatal(err)
	}
	performed, fixated := e.Run(100)
	if fixated {
		t.Fatal("tiny budget should not reach fixation")
	}
	if performed < 100 || performed != e.Flips() {
		t.Fatalf("performed %d flips (engine says %d), want >= 100 and consistent", performed, e.Flips())
	}
}

func TestAutoStrips(t *testing.T) {
	cases := []struct {
		n, w, want int
	}{
		{n: 32, w: 1, want: 1},    // too small to decompose
		{n: 64, w: 1, want: 16},   // capped at MaxStrips
		{n: 64, w: 2, want: 16},   // 16 strips of exactly 2w rows
		{n: 64, w: 5, want: 6},    // rounded down to even
		{n: 64, w: 16, want: 2},   // exactly two strips of 2w rows
		{n: 64, w: 17, want: 1},   // no two valid strips fit
		{n: 4096, w: 1, want: 16}, // the giant-run setting
	}
	for _, c := range cases {
		if got := AutoStrips(c.n, c.w); got != c.want {
			t.Errorf("AutoStrips(%d, %d) = %d, want %d", c.n, c.w, got, c.want)
		}
		if got := AutoStrips(c.n, c.w); got > 1 {
			if _, err := NewPartition(c.n, c.w, got, false); err != nil {
				t.Errorf("AutoStrips(%d, %d) = %d is not a valid partition: %v", c.n, c.w, got, err)
			}
		}
	}
}

func TestNewPartitionRejectsInvalid(t *testing.T) {
	cases := []struct {
		name         string
		n, w, strips int
		open         bool
	}{
		{name: "zero strips", n: 64, w: 2, strips: 0},
		{name: "horizon too large", n: 5, w: 3, strips: 1},
		{name: "odd strips on torus", n: 90, w: 2, strips: 3},
		{name: "strips too short", n: 64, w: 4, strips: 16},
		{name: "more strips than rows", n: 64, w: 1, strips: 80},
	}
	for _, c := range cases {
		if _, err := NewPartition(c.n, c.w, c.strips, c.open); err == nil {
			t.Errorf("%s: NewPartition(%d, %d, %d, %v) succeeded, want error", c.name, c.n, c.w, c.strips, c.open)
		}
	}
	if _, err := NewPartition(90, 2, 3, true); err != nil {
		t.Errorf("odd strips under the open boundary should be valid: %v", err)
	}
}
