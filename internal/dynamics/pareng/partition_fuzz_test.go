package pareng

import (
	"testing"

	"gridseg/internal/grid"
	"gridseg/internal/rng"
)

// FuzzPartition fuzzes the strip/halo geometry over (n, w, strips,
// boundary): every row (hence every site) is owned exactly once, the
// halo rows are exactly the (2w+1)^2 dependency region of the owned
// block minus the block itself, and recomputing every owned site's
// plus-count from the owned+halo rows alone reproduces
// grid.PlusWindowCounts bit for bit — including the clamped edge
// windows of the open boundary.
func FuzzPartition(f *testing.F) {
	f.Add(64, 2, 4, false, uint64(1))
	f.Add(64, 2, 16, true, uint64(2))
	f.Add(65, 1, 3, true, uint64(3))
	f.Add(96, 5, 2, false, uint64(4))
	f.Add(64, 16, 2, false, uint64(5))
	f.Fuzz(func(t *testing.T, n, w, strips int, open bool, seed uint64) {
		if w < 1 || w > 8 || n < 2*w+1 || n > 128 || strips < 1 || strips > 24 {
			t.Skip()
		}
		pt, err := NewPartition(n, w, strips, open)
		if err != nil {
			return // invalid geometry must be rejected, nothing more to check
		}

		// Ownership: the strips tile the rows exactly.
		owner := make([]int, n)
		for y := range owner {
			owner[y] = -1
		}
		for k := 0; k < strips; k++ {
			lo, hi := pt.OwnedRows(k)
			if lo >= hi {
				t.Fatalf("strip %d owns empty range [%d, %d)", k, lo, hi)
			}
			for y := lo; y < hi; y++ {
				if owner[y] != -1 {
					t.Fatalf("row %d owned by strips %d and %d", y, owner[y], k)
				}
				owner[y] = k
				if got := pt.Owner(y); got != k {
					t.Fatalf("Owner(%d) = %d, want %d", y, got, k)
				}
			}
		}
		for y, k := range owner {
			if k == -1 {
				t.Fatalf("row %d owned by no strip", y)
			}
		}

		// Halo: exactly the rows within distance w of the owned block,
		// wrapped on the torus and clamped at the edges when open.
		for k := 0; k < strips; k++ {
			lo, hi := pt.OwnedRows(k)
			want := make(map[int]bool)
			for y := lo - w; y < hi+w; y++ {
				yy := y
				if open {
					if yy < 0 || yy >= n {
						continue
					}
				} else {
					yy = ((yy % n) + n) % n
				}
				if yy < lo || yy >= hi {
					want[yy] = true
				}
			}
			halo := pt.HaloRows(k)
			seen := make(map[int]bool)
			for i, y := range halo {
				if i > 0 && halo[i-1] >= y {
					t.Fatalf("strip %d halo not strictly ascending: %v", k, halo)
				}
				seen[y] = true
				if !want[y] {
					t.Fatalf("strip %d halo includes row %d outside the dependency region", k, y)
				}
			}
			for y := range want {
				if !seen[y] {
					t.Fatalf("strip %d halo misses dependency row %d", k, y)
				}
			}
		}

		// Clamping: each owned site's plus-count, recomputed from the
		// owned+halo rows only, matches grid.PlusWindowCounts.
		lat := grid.RandomScenario(n, 0.5, 0.1, rng.New(seed))
		full := lat.PlusWindowCounts(w, open)
		for k := 0; k < strips; k++ {
			lo, hi := pt.OwnedRows(k)
			allowed := make([]bool, n)
			for y := lo; y < hi; y++ {
				allowed[y] = true
			}
			for _, y := range pt.HaloRows(k) {
				allowed[y] = true
			}
			for y := lo; y < hi; y++ {
				for x := 0; x < n; x++ {
					var c int32
					for dy := -w; dy <= w; dy++ {
						yy := y + dy
						if open {
							if yy < 0 || yy >= n {
								continue
							}
						} else {
							yy = ((yy % n) + n) % n
						}
						if !allowed[yy] {
							t.Fatalf("strip %d: window row %d of site (%d, %d) outside owned+halo", k, yy, x, y)
						}
						for dx := -w; dx <= w; dx++ {
							xx := x + dx
							if open {
								if xx < 0 || xx >= n {
									continue
								}
							} else {
								xx = ((xx % n) + n) % n
							}
							if lat.SpinAt(yy*n+xx) == grid.Plus {
								c++
							}
						}
					}
					if got := full[y*n+x]; got != c {
						t.Fatalf("strip %d: count(%d, %d) from owned+halo = %d, PlusWindowCounts = %d", k, x, y, c, got)
					}
				}
			}
		}
	})
}
