package pareng

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"gridseg/internal/dynamics"
	"gridseg/internal/dynamics/fastglauber"
	"gridseg/internal/grid"
	"gridseg/internal/rng"
)

// Config selects the decomposition and protocol of a parallel engine.
// The zero value asks for the deterministic protocol with the
// machine-independent automatic strip count and one worker per
// available CPU.
type Config struct {
	// Workers is the number of concurrent workers (0: GOMAXPROCS).
	// Under the deterministic protocol the worker count is a pure
	// execution detail — any count yields the same trajectory.
	Workers int
	// Strips is the strip count (0: AutoStrips(n, w); 1: no
	// decomposition — the engine delegates to the sequential fast
	// engine and is bit-identical to it). The strip count is part of
	// the trajectory definition: different counts give different —
	// individually reproducible — trajectories.
	Strips int
	// Free selects the free-running protocol: higher throughput, no
	// cross-run determinism (distributional guarantees only).
	Free bool
}

// burstEvents is the free-running protocol's per-claim event budget: a
// worker holding a strip's neighbor locks performs at most this many
// events before releasing them.
const burstEvents = 256

// cycleFloor is the deterministic protocol's minimum expected number
// of events per cycle; the phase horizon is chosen so a cycle performs
// about max(cycleFloor, K/4) events at K admissible flips, keeping
// barrier overhead amortized both early (K large) and near fixation.
const cycleFloor = 256

// Engine is the domain-decomposed parallel Glauber engine. Construct
// with New; it satisfies dynamics.Engine. With one strip every method
// delegates to the sequential fast engine; with several, Step and Run
// advance whole phase cycles (deterministic protocol) or event bursts
// (free-running protocol), so one Step may perform many flips — Flips
// reports the exact total.
type Engine struct {
	proc     *fastglauber.Process
	grp      *fastglauber.ShardGroup // nil when strips == 1
	part     Partition
	base     *rng.Source
	srcs     []*rng.Source // free-running per-strip streams
	locks    []sync.Mutex
	workers  int
	strips   int
	free     bool
	time     float64 // deterministic protocol: accumulated consumed cycle time
	lastFlip float64 // deterministic protocol: global time of the last flip
	cycles   int64
	cur      int // free-running Step round-robin cursor
}

// The parallel engine satisfies the shared engine contract.
var _ dynamics.Engine = (*Engine)(nil)

// New creates a parallel Glauber engine over the given lattice with
// the same model semantics and validation as the sequential engines
// (the scenario axes — open boundary, vacancies read off the lattice,
// per-site intolerance — are all supported). Construction consumes no
// randomness. With cfg.Strips == 1 the result is bit-identical to
// fastglauber.NewScenario on the same source.
func New(lat *grid.Lattice, w int, tauTilde float64, sc dynamics.Scenario, src *rng.Source, cfg Config) (*Engine, error) {
	strips := cfg.Strips
	if strips == 0 {
		strips = AutoStrips(lat.N(), w)
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	proc, err := fastglauber.NewScenario(lat, w, tauTilde, sc, src)
	if err != nil {
		return nil, fmt.Errorf("pareng: %w", err)
	}
	e := &Engine{proc: proc, base: src, workers: workers, strips: strips, free: cfg.Free}
	if strips == 1 {
		return e, nil
	}
	part, err := NewPartition(lat.N(), w, strips, sc.Open)
	if err != nil {
		return nil, err
	}
	grp, err := fastglauber.NewShards(proc, part.bounds, cfg.Free)
	if err != nil {
		return nil, fmt.Errorf("pareng: %w", err)
	}
	e.part, e.grp = part, grp
	e.locks = make([]sync.Mutex, strips)
	e.srcs = make([]*rng.Source, strips)
	for k := range e.srcs {
		// A label space disjoint from the deterministic protocol's
		// per-(cycle, phase, strip) labels (see phaseLabel).
		e.srcs[k] = src.Split(1<<62 + uint64(k))
	}
	return e, nil
}

// phaseLabel derives the random-stream label of (cycle, phase, strip):
// unique per triple because strips are capped well below 64.
func phaseLabel(cycle int64, phase, strip int) uint64 {
	return (uint64(cycle)*2+uint64(phase))*64 + uint64(strip) + 1
}

// Strips returns the strip count in force (1 means sequential
// delegation).
func (e *Engine) Strips() int { return e.strips }

// Workers returns the worker count in force.
func (e *Engine) Workers() int { return e.workers }

// Cycles returns the number of completed phase cycles (deterministic
// protocol; 0 under delegation and the free-running protocol).
func (e *Engine) Cycles() int64 { return e.cycles }

// Lattice returns the underlying reference lattice (live view).
func (e *Engine) Lattice() *grid.Lattice { return e.proc.Lattice() }

// Horizon returns the neighborhood radius w.
func (e *Engine) Horizon() int { return e.proc.Horizon() }

// NeighborhoodSize returns N = (2w+1)^2.
func (e *Engine) NeighborhoodSize() int { return e.proc.NeighborhoodSize() }

// Threshold returns the integer happiness threshold tau*N.
func (e *Engine) Threshold() int { return e.proc.Threshold() }

// Tau returns the rational intolerance threshold/N.
func (e *Engine) Tau() float64 { return e.proc.Tau() }

// Time returns the elapsed continuous time: the sequential clock under
// delegation, the accumulated cycle horizons under the deterministic
// protocol, and the largest strip-local clock under the free-running
// protocol (each strip's clock estimates the same global time, since a
// strip's events arrive at its local rate). In every mode Time is the
// time of the last flip — which is what fixation-time statistics
// measure — so the deterministic protocol never accumulates the tail
// cycles' large, mostly empty horizons near fixation.
func (e *Engine) Time() float64 {
	if e.grp == nil {
		return e.proc.Time()
	}
	if e.free {
		return e.grp.MaxTime()
	}
	return e.lastFlip
}

// Flips returns the number of effective flips so far.
func (e *Engine) Flips() int64 {
	if e.grp == nil {
		return e.proc.Flips()
	}
	return e.grp.Flips()
}

// SameCount returns the same-type count of site i including itself.
func (e *Engine) SameCount(i int) int { return e.proc.SameCount(i) }

// Happy reports whether the agent at site i is happy.
func (e *Engine) Happy(i int) bool { return e.proc.Happy(i) }

// HappyFraction returns the fraction of happy agents.
func (e *Engine) HappyFraction() float64 {
	if e.grp == nil {
		return e.proc.HappyFraction()
	}
	if e.proc.Agents() == 0 {
		return 1
	}
	return 1 - float64(e.grp.UnhappyCount())/float64(e.proc.Agents())
}

// UnhappyCount returns the number of unhappy agents.
func (e *Engine) UnhappyCount() int {
	if e.grp == nil {
		return e.proc.UnhappyCount()
	}
	return e.grp.UnhappyCount()
}

// FlippableCount returns the number of admissible flips.
func (e *Engine) FlippableCount() int {
	if e.grp == nil {
		return e.proc.FlippableCount()
	}
	return e.grp.FlippableCount()
}

// Fixated reports whether no admissible flip remains.
func (e *Engine) Fixated() bool { return e.FlippableCount() == 0 }

// Phi returns the paper's Lyapunov function.
func (e *Engine) Phi() int64 { return e.proc.Phi() }

// MaxFlipsBound returns the a-priori Lyapunov flip bound.
func (e *Engine) MaxFlipsBound() int64 { return e.proc.MaxFlipsBound() }

// CheckInvariants verifies bookkeeping against brute force.
func (e *Engine) CheckInvariants() error {
	if e.grp == nil {
		return e.proc.CheckInvariants()
	}
	return e.grp.CheckInvariants()
}

// Step advances the engine by one unit of progress: one flip under
// delegation (site is the flipped site), one phase cycle under the
// deterministic protocol, one strip burst under the free-running
// protocol (site is -1 for both batched forms, which may perform many
// flips — or none, when every drawn waiting time overshoots the
// horizon). ok=false after fixation.
func (e *Engine) Step() (site int, ok bool) {
	if e.grp == nil {
		return e.proc.Step()
	}
	if e.grp.FlippableCount() == 0 {
		return 0, false
	}
	if e.free {
		for try := 0; try < e.strips; try++ {
			k := e.cur % e.strips
			e.cur++
			if e.grp.Shard(k).RunBurst(e.srcs[k], burstEvents) > 0 {
				return -1, true
			}
		}
		return -1, true
	}
	e.runCycle()
	return -1, true
}

// Run advances the engine until fixation or until at least maxFlips
// additional flips have been performed (<= 0: no limit). The batched
// protocols stop at cycle or burst granularity, so performed may
// slightly overshoot maxFlips.
func (e *Engine) Run(maxFlips int64) (performed int64, fixated bool) {
	if e.grp == nil {
		return e.proc.Run(maxFlips)
	}
	if e.free {
		return e.runFree(maxFlips)
	}
	for maxFlips <= 0 || performed < maxFlips {
		if e.grp.FlippableCount() == 0 {
			return performed, true
		}
		performed += e.runCycle()
	}
	return performed, e.grp.FlippableCount() == 0
}

// runCycle advances one deterministic cycle: phase 0 runs the even
// strips concurrently over a fixed local-clock horizon, a serial
// barrier merges their boundary effects in ascending strip order, and
// phase 1 repeats for the odd strips. Everything that influences the
// state — the horizon, each strip's random stream, the merge order —
// is a pure function of (seed, parameters, strip count, cycle index),
// so the result is independent of the worker count and of goroutine
// scheduling.
func (e *Engine) runCycle() (flips int64) {
	k := e.grp.FlippableCount()
	if k == 0 {
		return 0
	}
	target := float64(k) / 4
	if target < cycleFloor {
		target = cycleFloor
	}
	dt := target / float64(k)
	advance := 0.0
	type result struct {
		events   int64
		last     float64
		consumed float64
		lo, hi   bool
	}
	results := make([]result, e.strips)
	for phase := 0; phase < 2; phase++ {
		var active []int
		for s := phase; s < e.strips; s += 2 {
			active = append(active, s)
		}
		run := func(s int) {
			shard := e.grp.Shard(s)
			src := e.base.Split(phaseLabel(e.cycles, phase, s))
			ev, last, lo, hi := shard.RunHorizon(src, dt)
			// Time consumed by the strip this cycle: the full horizon if
			// it was truncated while still active, the last event's time
			// if it ran out of admissible flips before the horizon. The
			// cycle's clock advance is the max over strips, so tail
			// cycles — where every strip fixates locally long before the
			// oversized horizon — contribute only the time events
			// actually took, keeping the global clock an honest estimate
			// of the sequential one.
			consumed := last
			if shard.FlippableCount() > 0 {
				consumed = dt
			}
			results[s] = result{events: ev, last: last, consumed: consumed, lo: lo, hi: hi}
		}
		if nw := min(e.workers, len(active)); nw <= 1 {
			for _, s := range active {
				run(s)
			}
		} else {
			work := make(chan int)
			var wg sync.WaitGroup
			for i := 0; i < nw; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for s := range work {
						run(s)
					}
				}()
			}
			for _, s := range active {
				work <- s
			}
			close(work)
			wg.Wait()
		}
		// Merge barrier: re-derive the boundary bands the phase's flips
		// wrote into, in canonical ascending order. refreshSite is
		// idempotent given the (already settled) counts, so the merge
		// only has to be ordered, not clever.
		for _, s := range active {
			r := results[s]
			flips += r.events
			if r.events > 0 && e.time+r.last > e.lastFlip {
				e.lastFlip = e.time + r.last
			}
			if r.consumed > advance {
				advance = r.consumed
			}
			lo, hi := e.part.OwnedRows(s)
			if r.lo {
				e.refreshBand(lo-e.part.W, lo)
			}
			if r.hi {
				e.refreshBand(hi, hi+e.part.W)
			}
		}
	}
	e.cycles++
	e.time += advance
	return flips
}

// refreshBand re-derives rows [lo, hi), wrapped on the torus and
// clamped at the edges under the open boundary.
func (e *Engine) refreshBand(lo, hi int) {
	n := e.part.N
	if e.part.Open {
		if lo < 0 {
			lo = 0
		}
		if hi > n {
			hi = n
		}
		if lo < hi {
			e.grp.RefreshRows(lo, hi)
		}
		return
	}
	if lo < 0 {
		e.grp.RefreshRows(lo+n, n)
		lo = 0
	}
	if hi > n {
		e.grp.RefreshRows(0, hi-n)
		hi = n
	}
	if lo < hi {
		e.grp.RefreshRows(lo, hi)
	}
}

// runFree runs the free-running protocol to fixation (or the flip
// budget): workers claim strips round-robin, lock the strip and both
// neighbors in ascending index order, and perform an event burst whose
// cross-strip effects apply immediately to the locked neighbors. A
// strict global count of admissible flips, maintained with per-burst
// deltas, detects fixation: once it reads zero it can never grow
// again, because growth requires a flip and flips require an
// admissible site.
func (e *Engine) runFree(maxFlips int64) (int64, bool) {
	var performed, flippable atomic.Int64
	var cursor atomic.Int64
	flippable.Store(int64(e.grp.FlippableCount()))
	nw := min(e.workers, e.strips)
	var wg sync.WaitGroup
	for i := 0; i < nw; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if flippable.Load() == 0 {
					return
				}
				if maxFlips > 0 && performed.Load() >= maxFlips {
					return
				}
				k := int(cursor.Add(1)-1) % e.strips
				ids := e.neighborhood(k)
				for _, id := range ids {
					e.locks[id].Lock()
				}
				burst := int64(burstEvents)
				if maxFlips > 0 {
					if rem := maxFlips - performed.Load(); rem < burst {
						burst = rem
					}
				}
				var events int64
				if burst > 0 {
					before := 0
					for _, id := range ids {
						before += e.grp.Shard(id).FlippableCount()
					}
					events = e.grp.Shard(k).RunBurst(e.srcs[k], int(burst))
					after := 0
					for _, id := range ids {
						after += e.grp.Shard(id).FlippableCount()
					}
					flippable.Add(int64(after - before))
					performed.Add(events)
				}
				for j := len(ids) - 1; j >= 0; j-- {
					e.locks[ids[j]].Unlock()
				}
				if events == 0 {
					runtime.Gosched()
				}
			}
		}()
	}
	wg.Wait()
	return performed.Load(), e.grp.FlippableCount() == 0
}

// neighborhood returns the sorted, deduplicated lock set of strip k:
// the strip and both torus-adjacent neighbors. Ascending acquisition
// order keeps the workers deadlock-free.
func (e *Engine) neighborhood(k int) []int {
	s := e.strips
	a, b := (k-1+s)%s, (k+1)%s
	ids := []int{k}
	for _, v := range []int{a, b} {
		seen := false
		for _, u := range ids {
			if u == v {
				seen = true
			}
		}
		if !seen {
			ids = append(ids, v)
		}
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	return ids
}
