package dynamics

import (
	"testing"
	"testing/quick"

	"gridseg/internal/geom"
	"gridseg/internal/grid"
	"gridseg/internal/rng"
)

func mustVariant(t *testing.T, lat *grid.Lattice, w int, opts VariantOptions, seed uint64) *Variant {
	t.Helper()
	v, err := NewVariant(lat, w, opts, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestVariantValidation(t *testing.T) {
	lat := grid.New(9, grid.Plus)
	bad := []VariantOptions{
		{TauPlus: -0.1, TauMinus: 0.5},
		{TauPlus: 0.5, TauMinus: 1.5},
		{TauPlus: 0.6, TauMinus: 0.5, UpperPlus: 0.5}, // lo > hi
		{TauPlus: 0.5, TauMinus: 0.5, Noise: 1},
		{TauPlus: 0.5, TauMinus: 0.5, Noise: -0.1},
	}
	for i, o := range bad {
		if _, err := NewVariant(lat, 1, o, rng.New(1)); err == nil {
			t.Errorf("case %d: want error for %+v", i, o)
		}
	}
	if _, err := NewVariant(lat, 0, VariantOptions{TauPlus: 0.5, TauMinus: 0.5}, rng.New(1)); err == nil {
		t.Error("want error for zero horizon")
	}
	if _, err := NewVariant(lat, 1, VariantOptions{TauPlus: 0.5, TauMinus: 0.5}, nil); err == nil {
		t.Error("want error for nil source")
	}
}

// With symmetric thresholds, no upper bound, and zero noise the variant
// must agree exactly with the base process.
func TestVariantMatchesBaseProcess(t *testing.T) {
	latA := grid.Random(20, 0.5, rng.New(41))
	latB := latA.Clone()
	base := mustProcess(t, latA, 2, 0.45, 42)
	v := mustVariant(t, latB, 2, VariantOptions{TauPlus: 0.45, TauMinus: 0.45}, 42)
	if base.FlippableCount() != v.FlippableCount() {
		t.Fatalf("initial flippable: base %d, variant %d", base.FlippableCount(), v.FlippableCount())
	}
	for i := 0; i < latA.Sites(); i++ {
		if base.Happy(i) != v.Happy(i) {
			t.Fatalf("happiness mismatch at %d", i)
		}
		if base.Flippable(i) != v.Flippable(i) {
			t.Fatalf("flippable mismatch at %d", i)
		}
	}
	// Same seed => identical trajectories and fixed points.
	base.Run(0)
	if _, fixated, err := v.Run(0); err != nil || !fixated {
		t.Fatalf("variant run: fixated=%v err=%v", fixated, err)
	}
	if !latA.Equal(latB) {
		t.Fatal("variant fixed point differs from base process")
	}
}

func TestVariantAsymmetricThresholds(t *testing.T) {
	// TauPlus = 0.8 (plus agents very intolerant), TauMinus = 0.1
	// (minus agents nearly always happy): only plus agents flip.
	lat := grid.Random(24, 0.5, rng.New(43))
	v := mustVariant(t, lat, 2, VariantOptions{TauPlus: 0.8, TauMinus: 0.1}, 44)
	for i := 0; i < 200; i++ {
		site, ok := v.Step()
		if !ok {
			break
		}
		// Every flip must have been a plus agent becoming minus (the
		// flip target must satisfy the minus window, and minus agents
		// never flip because tau=0.1 keeps them happy... unless the
		// both-window rule allows; check direction directly).
		if lat.SpinAt(site) != grid.Minus {
			t.Fatalf("flip %d: a minus agent flipped to plus despite tau-minus=0.1", i)
		}
	}
	if err := v.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Both-sided discomfort: on a monochromatic lattice with an upper
// threshold below 1, every agent is unhappy as a majority member and
// flips are admissible into the opposite window.
func TestVariantBothSidedDiscomfort(t *testing.T) {
	lat := grid.New(15, grid.Plus)
	opts := VariantOptions{
		TauPlus: 0.3, TauMinus: 0.3,
		UpperPlus: 0.8, UpperMinus: 0.8,
	}
	v := mustVariant(t, lat, 2, opts, 45)
	if v.UnhappyCount() != lat.Sites() {
		t.Fatalf("monochromatic majority must be fully uncomfortable: %d unhappy", v.UnhappyCount())
	}
	// A flip turns a plus into a minus with same-count 1 of 25, below
	// the lower threshold 8: not admissible. So nothing is flippable
	// even though everyone is unhappy.
	if v.FlippableCount() != 0 {
		t.Fatalf("flippable = %d, want 0 (flip would undershoot)", v.FlippableCount())
	}
	// With a permissive lower bound the flips become admissible and the
	// dynamics mix the lattice.
	opts2 := VariantOptions{TauPlus: 0, TauMinus: 0, UpperPlus: 0.8, UpperMinus: 0.8}
	v2 := mustVariant(t, grid.New(15, grid.Plus), 2, opts2, 46)
	if v2.FlippableCount() == 0 {
		t.Fatal("permissive lower bound must admit flips")
	}
	performed, _, err := v2.Run(500)
	if err != nil {
		t.Fatal(err)
	}
	if performed == 0 {
		t.Fatal("both-sided dynamics must move")
	}
	if err := v2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The lattice must no longer be monochromatic.
	if v2.Lattice().CountPlus() == v2.Lattice().Sites() {
		t.Fatal("discomfort dynamics must break the monochromatic state")
	}
}

func TestVariantNoiseKeepsMoving(t *testing.T) {
	// A fixated configuration with noise > 0 must still produce events.
	lat := grid.New(15, grid.Plus)
	v := mustVariant(t, lat, 2, VariantOptions{TauPlus: 0.4, TauMinus: 0.4, Noise: 0.1}, 47)
	if v.FlippableCount() != 0 {
		t.Fatal("monochromatic lattice has no rule flips")
	}
	for i := 0; i < 50; i++ {
		if _, ok := v.Step(); !ok {
			t.Fatal("noisy process must never stall")
		}
	}
	if v.NoiseFlips() == 0 {
		t.Fatal("noise flips must occur")
	}
	if err := v.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestVariantNoisyRunNeedsBudget(t *testing.T) {
	lat := grid.Random(15, 0.5, rng.New(48))
	v := mustVariant(t, lat, 2, VariantOptions{TauPlus: 0.45, TauMinus: 0.45, Noise: 0.05}, 49)
	if _, _, err := v.Run(0); err == nil {
		t.Fatal("unbounded noisy run must be rejected")
	}
	performed, fixated, err := v.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	if performed != 100 || fixated {
		t.Fatalf("performed=%d fixated=%v", performed, fixated)
	}
}

func TestVariantNoiseFreeRunTerminates(t *testing.T) {
	lat := grid.Random(20, 0.5, rng.New(50))
	v := mustVariant(t, lat, 2, VariantOptions{TauPlus: 0.45, TauMinus: 0.45}, 51)
	_, fixated, err := v.Run(0)
	if err != nil || !fixated {
		t.Fatalf("fixated=%v err=%v", fixated, err)
	}
	if v.FlippableCount() != 0 {
		t.Fatal("fixation must empty the flippable set")
	}
}

func TestVariantTimeAdvances(t *testing.T) {
	lat := grid.Random(15, 0.5, rng.New(52))
	v := mustVariant(t, lat, 2, VariantOptions{TauPlus: 0.45, TauMinus: 0.45, Noise: 0.02}, 53)
	prev := 0.0
	for i := 0; i < 50; i++ {
		if _, ok := v.Step(); !ok {
			break
		}
		if v.Time() <= prev {
			t.Fatal("time must strictly increase")
		}
		prev = v.Time()
	}
}

// Property: invariants hold after bounded random evolution across
// random variant parameterizations.
func TestQuickVariantInvariants(t *testing.T) {
	f := func(seed uint64, tpRaw, tmRaw, upRaw, noiseRaw uint8) bool {
		tp := 0.2 + float64(tpRaw%50)/100 // 0.20..0.69
		tm := 0.2 + float64(tmRaw%50)/100
		up := 0.7 + float64(upRaw%31)/100   // 0.70..1.00
		noise := float64(noiseRaw%10) / 100 // 0..0.09
		lat := grid.Random(12, 0.5, rng.New(seed))
		v, err := NewVariant(lat, 1, VariantOptions{
			TauPlus: tp, TauMinus: tm,
			UpperPlus: up, UpperMinus: up,
			Noise: noise,
		}, rng.New(seed+1))
		if err != nil {
			return false
		}
		if _, _, err := v.Run(60); err != nil {
			return false
		}
		return v.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestVariantUpperWindowHappiness(t *testing.T) {
	// Hand case: w=1 (N=9), upper threshold 0.8 => hi = floor(7.2) = 7.
	// An agent with all 9 same-type neighbors has same=9 > 7: unhappy.
	// An agent with same=7 is happy.
	lat := grid.New(9, grid.Plus)
	lat.Set(geom.Point{X: 0, Y: 0}, grid.Minus)
	lat.Set(geom.Point{X: 2, Y: 0}, grid.Minus)
	v := mustVariant(t, lat, 1, VariantOptions{TauPlus: 0.1, TauMinus: 0.1, UpperPlus: 0.8, UpperMinus: 0.8}, 54)
	tor := lat.Torus()
	center := tor.Index(geom.Point{X: 4, Y: 4}) // deep in the + sea: same=9
	if v.Happy(center) {
		t.Fatal("majority-saturated agent must be uncomfortable")
	}
	probe := tor.Index(geom.Point{X: 1, Y: 0}) // neighbors the two minus: same=7
	if !v.Happy(probe) {
		t.Fatalf("same=%d of 9 within [1,7] must be happy", v.SameCount(probe))
	}
}
