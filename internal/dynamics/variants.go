package dynamics

import (
	"errors"
	"fmt"
	"math"

	"gridseg/internal/geom"
	"gridseg/internal/grid"
	"gridseg/internal/rng"
	"gridseg/internal/theory"
)

// VariantOptions configures the model variations discussed in the
// paper's concluding remarks (Section V) and introduction (Section I.A):
//
//   - Per-type intolerances TauPlus/TauMinus (the Barmpalias-Elwes-
//     Lewis-Pye two-threshold model the paper cites as [26]).
//   - Both-sided discomfort: an agent is also unhappy when the fraction
//     of same-type agents exceeds an upper threshold ("uncomfortable
//     being ... a majority in a largely segregated area", Sec. V).
//   - Noise: with probability Noise a ringing agent acts against the
//     rule's prescription ("a small probability of acting differently
//     than what the general rule prescribes", Sec. I.A).
type VariantOptions struct {
	// TauPlus and TauMinus are the lower intolerances of +1 and -1
	// agents: an agent is unhappy when its same-type fraction is below
	// its type's threshold.
	TauPlus, TauMinus float64
	// UpperPlus and UpperMinus, when below 1, add the both-sided
	// discomfort rule: an agent is also unhappy when its same-type
	// fraction strictly exceeds the upper threshold. 0 means "off"
	// (treated as 1).
	UpperPlus, UpperMinus float64
	// Noise in [0, 1) is the probability that a ringing agent acts
	// against the prescription: a non-flippable agent flips anyway, a
	// flippable agent refuses. Noise > 0 removes the termination
	// guarantee; runs must be budgeted.
	Noise float64
}

func (o *VariantOptions) normalize() error {
	if o.UpperPlus == 0 {
		o.UpperPlus = 1
	}
	if o.UpperMinus == 0 {
		o.UpperMinus = 1
	}
	for _, v := range []float64{o.TauPlus, o.TauMinus, o.UpperPlus, o.UpperMinus} {
		if v < 0 || v > 1 {
			return errors.New("dynamics: thresholds must be in [0, 1]")
		}
	}
	if o.TauPlus > o.UpperPlus || o.TauMinus > o.UpperMinus {
		return errors.New("dynamics: lower threshold above upper threshold")
	}
	if o.Noise < 0 || o.Noise >= 1 {
		return errors.New("dynamics: noise must be in [0, 1)")
	}
	return nil
}

// Variant is the generalized Glauber process with per-type and
// both-sided thresholds and optional noise. It shares the incremental
// counting design of Process but evaluates interval happiness.
type Variant struct {
	lat  *grid.Lattice
	src  *rng.Source
	n    int
	w    int
	nbhd int
	// Integer happiness windows per spin: same-type count must be in
	// [lo, hi] to be happy.
	loPlus, hiPlus   int
	loMinus, hiMinus int
	noise            float64
	plus             []int32
	flippable        []int32
	pos              []int32
	nUnhappy         int
	unhappy          []bool
	time             float64
	flips            int64
	noiseFlips       int64
}

// NewVariant builds the generalized process over the lattice.
func NewVariant(lat *grid.Lattice, w int, opts VariantOptions, src *rng.Source) (*Variant, error) {
	if err := opts.normalize(); err != nil {
		return nil, err
	}
	if w < 1 || 2*w+1 > lat.N() {
		return nil, fmt.Errorf("dynamics: invalid horizon %d for lattice side %d", w, lat.N())
	}
	if src == nil {
		return nil, errors.New("dynamics: nil random source")
	}
	nbhd := geom.SquareSize(w)
	v := &Variant{
		lat:     lat,
		src:     src,
		n:       lat.N(),
		w:       w,
		nbhd:    nbhd,
		loPlus:  theory.Threshold(opts.TauPlus, nbhd),
		hiPlus:  int(math.Floor(opts.UpperPlus * float64(nbhd))),
		loMinus: theory.Threshold(opts.TauMinus, nbhd),
		hiMinus: int(math.Floor(opts.UpperMinus * float64(nbhd))),
		noise:   opts.Noise,
		plus:    lat.WindowCounts(w),
		pos:     make([]int32, lat.Sites()),
		unhappy: make([]bool, lat.Sites()),
	}
	for i := range v.pos {
		v.pos[i] = -1
	}
	for i := 0; i < lat.Sites(); i++ {
		v.refresh(i)
	}
	return v, nil
}

// Lattice returns the underlying lattice (live view).
func (v *Variant) Lattice() *grid.Lattice { return v.lat }

// Flips returns the number of rule-driven flips performed.
func (v *Variant) Flips() int64 { return v.flips }

// NoiseFlips returns the number of noise-driven flips performed.
func (v *Variant) NoiseFlips() int64 { return v.noiseFlips }

// Time returns the elapsed continuous time.
func (v *Variant) Time() float64 { return v.time }

// UnhappyCount returns the number of unhappy agents.
func (v *Variant) UnhappyCount() int { return v.nUnhappy }

// FlippableCount returns the number of admissible rule flips.
func (v *Variant) FlippableCount() int { return len(v.flippable) }

// window returns the happiness window of a spin.
func (v *Variant) window(s grid.Spin) (lo, hi int) {
	if s == grid.Plus {
		return v.loPlus, v.hiPlus
	}
	return v.loMinus, v.hiMinus
}

// SameCount returns the same-type count of site i, including itself.
func (v *Variant) SameCount(i int) int {
	if v.lat.SpinAt(i) == grid.Plus {
		return int(v.plus[i])
	}
	return v.nbhd - int(v.plus[i])
}

// Happy reports interval happiness: lo <= same <= hi for the agent's
// type.
func (v *Variant) Happy(i int) bool {
	lo, hi := v.window(v.lat.SpinAt(i))
	same := v.SameCount(i)
	return same >= lo && same <= hi
}

// Flippable reports whether the rule prescribes a flip: the agent is
// unhappy and the flip would make it happy under the opposite type's
// window.
func (v *Variant) Flippable(i int) bool {
	spin := v.lat.SpinAt(i)
	same := v.SameCount(i)
	lo, hi := v.window(spin)
	if same >= lo && same <= hi {
		return false
	}
	newSame := v.nbhd - same + 1
	olo, ohi := v.window(spin.Opposite())
	return newSame >= olo && newSame <= ohi
}

func (v *Variant) refresh(i int) {
	unhappy := !v.Happy(i)
	if unhappy != v.unhappy[i] {
		v.unhappy[i] = unhappy
		if unhappy {
			v.nUnhappy++
		} else {
			v.nUnhappy--
		}
	}
	flippable := unhappy && v.Flippable(i)
	in := v.pos[i] >= 0
	switch {
	case flippable && !in:
		v.pos[i] = int32(len(v.flippable))
		v.flippable = append(v.flippable, int32(i))
	case !flippable && in:
		j := v.pos[i]
		last := v.flippable[len(v.flippable)-1]
		v.flippable[j] = last
		v.pos[last] = j
		v.flippable = v.flippable[:len(v.flippable)-1]
		v.pos[i] = -1
	}
}

func (v *Variant) applyFlip(i int) {
	newSpin := v.lat.Flip(i)
	var delta int32 = 1
	if newSpin == grid.Minus {
		delta = -1
	}
	n, w := v.n, v.w
	x0, y0 := i%n, i/n
	for dy := -w; dy <= w; dy++ {
		y := y0 + dy
		if y < 0 {
			y += n
		} else if y >= n {
			y -= n
		}
		row := y * n
		for dx := -w; dx <= w; dx++ {
			x := x0 + dx
			if x < 0 {
				x += n
			} else if x >= n {
				x -= n
			}
			j := row + x
			v.plus[j] += delta
			v.refresh(j)
		}
	}
}

// Step performs one effective event of the noisy kinetic Monte Carlo:
// rule-driven flips occur at rate (1-Noise) per flippable agent and
// noise flips at rate Noise per non-flippable agent. It returns
// ok=false only when no event has positive rate (noise-free fixation).
func (v *Variant) Step() (site int, ok bool) {
	k := len(v.flippable)
	if v.noise == 0 {
		// Noise-free fast path; consumes randomness exactly like the
		// base Process, so symmetric-threshold variants replay base
		// trajectories draw for draw.
		if k == 0 {
			return 0, false
		}
		v.time += v.src.ExpRate(float64(k))
		i := int(v.flippable[v.src.Intn(k)])
		v.applyFlip(i)
		v.flips++
		return i, true
	}
	ruleRate := (1 - v.noise) * float64(k)
	noiseRate := v.noise * float64(v.lat.Sites()-k)
	total := ruleRate + noiseRate
	if total <= 0 {
		return 0, false
	}
	v.time += v.src.ExpRate(total)
	if v.src.Float64()*total < ruleRate {
		i := int(v.flippable[v.src.Intn(k)])
		v.applyFlip(i)
		v.flips++
		return i, true
	}
	// Noise event: uniform over the non-flippable complement
	// (rejection sampling; the complement is large whenever noise
	// events are likely).
	for {
		i := v.src.Intn(v.lat.Sites())
		if v.pos[i] == -1 {
			v.applyFlip(i)
			v.noiseFlips++
			return i, true
		}
	}
}

// Run advances the process by at most maxEvents effective events
// (required to be positive when Noise > 0, since noisy runs do not
// terminate). It returns the events performed and whether a noise-free
// fixation state was reached.
func (v *Variant) Run(maxEvents int64) (int64, bool, error) {
	if maxEvents <= 0 {
		if v.noise > 0 {
			return 0, false, errors.New("dynamics: noisy runs need an event budget")
		}
		maxEvents = math.MaxInt64
	}
	var performed int64
	for performed < maxEvents {
		if _, ok := v.Step(); !ok {
			return performed, true, nil
		}
		performed++
	}
	return performed, len(v.flippable) == 0 && v.noise == 0, nil
}

// CheckInvariants verifies bookkeeping against brute force.
func (v *Variant) CheckInvariants() error {
	fresh := v.lat.WindowCounts(v.w)
	inSet := make(map[int32]bool, len(v.flippable))
	for j, site := range v.flippable {
		if v.pos[site] != int32(j) {
			return fmt.Errorf("pos[%d] = %d, want %d", site, v.pos[site], j)
		}
		inSet[site] = true
	}
	unhappyCount := 0
	for i := 0; i < v.lat.Sites(); i++ {
		if v.plus[i] != fresh[i] {
			return fmt.Errorf("plus[%d] = %d, want %d", i, v.plus[i], fresh[i])
		}
		if v.unhappy[i] != !v.Happy(i) {
			return fmt.Errorf("unhappy[%d] inconsistent", i)
		}
		if v.unhappy[i] {
			unhappyCount++
		}
		want := !v.Happy(i) && v.Flippable(i)
		if inSet[int32(i)] != want {
			return fmt.Errorf("flippable membership of %d = %v, want %v", i, inSet[int32(i)], want)
		}
	}
	if unhappyCount != v.nUnhappy {
		return fmt.Errorf("nUnhappy = %d, want %d", v.nUnhappy, unhappyCount)
	}
	return nil
}
