package dynamics

import (
	"errors"

	"gridseg/internal/grid"
	"gridseg/internal/rng"
	"gridseg/internal/sampleset"
	"gridseg/internal/theory"
)

// Kawasaki is the closed-system baseline dynamic discussed in Section I.A
// of the paper: a pair of unhappy agents of opposite types swap their
// locations if this makes both of them happy. The number of agents of
// each type is conserved. Unlike Glauber dynamics there is no simple
// Lyapunov guarantee under pair sampling, so runs are bounded by an
// attempt budget; a run is reported converged when either type has no
// unhappy agents left (no admissible swap can exist) or the attempt
// budget is exhausted with no successful swap.
type Kawasaki struct {
	p *Process // reuse the count/refresh machinery; Step is never called
	// Indexed samplers over the unhappy agents of each type (see
	// internal/sampleset).
	unhappyPlus  *sampleset.Set
	unhappyMinus *sampleset.Set
	swaps        int64
	attempts     int64
}

// NewKawasaki creates a Kawasaki process over the lattice with horizon w
// and intolerance tauTilde. The lattice is mutated in place.
func NewKawasaki(lat *grid.Lattice, w int, tauTilde float64, src *rng.Source) (*Kawasaki, error) {
	return NewKawasakiScenario(lat, w, tauTilde, Scenario{}, src)
}

// NewKawasakiScenario creates a Kawasaki process under the given
// scenario (open boundaries, per-site tau, vacancies read off the
// lattice). Swaps exchange two unhappy agents of opposite types;
// vacant sites never participate.
func NewKawasakiScenario(lat *grid.Lattice, w int, tauTilde float64, sc Scenario, src *rng.Source) (*Kawasaki, error) {
	p, err := NewScenario(lat, w, tauTilde, sc, src)
	if err != nil {
		return nil, err
	}
	k := &Kawasaki{
		p:            p,
		unhappyPlus:  sampleset.New(lat.Sites()),
		unhappyMinus: sampleset.New(lat.Sites()),
	}
	for i := 0; i < lat.Sites(); i++ {
		k.refreshSets(i)
	}
	return k, nil
}

// Process returns the underlying count-tracking process (read-only use).
func (k *Kawasaki) Process() *Process { return k.p }

// Engine returns the underlying process as the shared engine contract
// (the accessor of SwapEngine).
func (k *Kawasaki) Engine() Engine { return k.p }

// Swaps returns the number of successful swaps so far.
func (k *Kawasaki) Swaps() int64 { return k.swaps }

// Attempts returns the number of attempted swaps so far.
func (k *Kawasaki) Attempts() int64 { return k.attempts }

// UnhappyByType returns the numbers of unhappy +1 and -1 agents.
func (k *Kawasaki) UnhappyByType() (plus, minus int) {
	return k.unhappyPlus.Len(), k.unhappyMinus.Len()
}

func (k *Kawasaki) refreshSets(i int) {
	spin := k.p.lat.SpinAt(i)
	unhappy := !k.p.Happy(i)
	k.unhappyPlus.Update(i, unhappy && spin == grid.Plus)
	k.unhappyMinus.Update(i, unhappy && spin == grid.Minus)
}

// forceFlipTracked flips site i in the underlying process and refreshes
// the per-type unhappy sets of every affected site (the window wraps
// or clamps per the scenario's boundary).
func (k *Kawasaki) forceFlipTracked(i int) {
	k.p.ForceFlip(i)
	k.p.forEachWindowSite(i, k.refreshSets)
}

// StepAttempt samples one unhappy agent of each type uniformly at random
// and swaps them iff the swap makes both happy. It returns swapped=false
// with done=true when no unhappy pair exists.
func (k *Kawasaki) StepAttempt() (swapped, done bool) {
	if k.unhappyPlus.Len() == 0 || k.unhappyMinus.Len() == 0 {
		return false, true
	}
	k.attempts++
	u := int(k.unhappyPlus.Sample(k.p.src))
	v := int(k.unhappyMinus.Sample(k.p.src))
	// Apply the swap as two tracked flips, then verify both movers are
	// happy at their new locations; revert if not. The order of checks
	// accounts for overlapping neighborhoods automatically because
	// counts are updated before the happiness test.
	k.forceFlipTracked(u) // u's site becomes -1 (the mover from v)
	k.forceFlipTracked(v) // v's site becomes +1 (the mover from u)
	if k.p.Happy(u) && k.p.Happy(v) {
		k.swaps++
		return true, false
	}
	k.forceFlipTracked(v)
	k.forceFlipTracked(u)
	return false, false
}

// Run performs swap attempts until no unhappy pair exists, until
// maxAttempts have been made, or until failStreak consecutive attempts
// fail (a practical fixation heuristic for this baseline). It returns
// the number of successful swaps performed by this call.
func (k *Kawasaki) Run(maxAttempts, failStreak int64) (performed int64, done bool) {
	if maxAttempts <= 0 {
		return 0, false
	}
	var streak int64
	for a := int64(0); a < maxAttempts; a++ {
		swapped, noPairs := k.StepAttempt()
		if noPairs {
			return performed, true
		}
		if swapped {
			performed++
			streak = 0
		} else {
			streak++
			if failStreak > 0 && streak >= failStreak {
				return performed, false
			}
		}
	}
	return performed, false
}

// CheckInvariants verifies the per-type unhappy sets against brute force
// in addition to the underlying process invariants.
func (k *Kawasaki) CheckInvariants() error {
	if err := k.p.CheckInvariants(); err != nil {
		return err
	}
	if err := k.unhappyPlus.CheckInvariants("unhappyPlus", func(i int) bool {
		return !k.p.Happy(i) && k.p.lat.SpinAt(i) == grid.Plus
	}); err != nil {
		return err
	}
	return k.unhappyMinus.CheckInvariants("unhappyMinus", func(i int) bool {
		return !k.p.Happy(i) && k.p.lat.SpinAt(i) == grid.Minus
	})
}

// ThresholdFor exposes the integer threshold the engines use, for callers
// that need to agree with the engine about the rational intolerance.
func ThresholdFor(tauTilde float64, w int) (thresh, nbhd int, err error) {
	if w < 1 {
		return 0, 0, errors.New("dynamics: horizon must be >= 1")
	}
	nbhd = (2*w + 1) * (2*w + 1)
	return theory.Threshold(tauTilde, nbhd), nbhd, nil
}
