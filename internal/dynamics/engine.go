package dynamics

import "gridseg/internal/grid"

// Engine is the contract shared by the Glauber engine implementations:
// the reference scalar engine of this package and the bit-packed fast
// engine of internal/dynamics/fastglauber. The two are interchangeable
// bit for bit — given the same lattice, parameters, and random source
// they produce identical flip sequences, clocks, and observables (the
// differential harness in internal/difftest enforces this), so callers
// may select an engine purely on performance grounds.
type Engine interface {
	// Lattice returns the underlying reference lattice (live view).
	Lattice() *grid.Lattice
	// Horizon returns the neighborhood radius w.
	Horizon() int
	// NeighborhoodSize returns N = (2w+1)^2.
	NeighborhoodSize() int
	// Threshold returns the integer happiness threshold tau*N.
	Threshold() int
	// Tau returns the rational intolerance threshold/N.
	Tau() float64
	// Time returns the elapsed continuous (Poisson-clock) time.
	Time() float64
	// Flips returns the number of effective flips so far.
	Flips() int64
	// SameCount returns the same-type count of site i including itself.
	SameCount(i int) int
	// Happy reports whether the agent at site i is happy.
	Happy(i int) bool
	// HappyFraction returns the fraction of happy agents.
	HappyFraction() float64
	// UnhappyCount returns the number of unhappy agents.
	UnhappyCount() int
	// FlippableCount returns the number of admissible flips.
	FlippableCount() int
	// Fixated reports whether no admissible flip remains.
	Fixated() bool
	// Step performs one effective event; ok=false after fixation.
	Step() (site int, ok bool)
	// Run advances until fixation or maxFlips flips (<= 0: no limit).
	Run(maxFlips int64) (performed int64, fixated bool)
	// Phi returns the paper's Lyapunov function.
	Phi() int64
	// MaxFlipsBound returns the a-priori Lyapunov flip bound.
	MaxFlipsBound() int64
	// CheckInvariants verifies bookkeeping against brute force.
	CheckInvariants() error
}

// The reference engine satisfies the shared contract.
var _ Engine = (*Process)(nil)

// SwapEngine is the contract shared by the Kawasaki (swap dynamic)
// implementations: the reference engine of this package and the
// bit-packed fast engine of internal/dynamics/fastglauber. Like the
// Glauber engines, the two are interchangeable bit for bit — identical
// swap sequences, random-source consumption, and observables — so
// callers may select one purely on performance grounds.
type SwapEngine interface {
	// Engine returns the underlying count-tracking Glauber engine
	// (read-only use: happiness, counts, stats).
	Engine() Engine
	// StepAttempt samples an unhappy pair and swaps it iff the swap
	// makes both movers happy; done reports that no pair exists.
	StepAttempt() (swapped, done bool)
	// Run performs attempts until no unhappy pair exists, maxAttempts
	// are spent, or failStreak consecutive attempts fail.
	Run(maxAttempts, failStreak int64) (performed int64, done bool)
	// Swaps returns the number of successful swaps so far.
	Swaps() int64
	// Attempts returns the number of attempted swaps so far.
	Attempts() int64
	// UnhappyByType returns the numbers of unhappy +1 and -1 agents.
	UnhappyByType() (plus, minus int)
	// CheckInvariants verifies bookkeeping against brute force.
	CheckInvariants() error
}

// The reference swap engine satisfies the shared swap contract.
var _ SwapEngine = (*Kawasaki)(nil)

// MoveEngine is the contract shared by the relocation (Move dynamic)
// implementations: the reference engine of this package and the
// bit-packed fast engine of internal/dynamics/fastglauber. Like the
// other pairs, the two are interchangeable bit for bit — identical
// relocation sequences, random-source consumption, and observables —
// so callers may select one purely on performance grounds.
type MoveEngine interface {
	// Engine returns the underlying count-tracking engine (read-only
	// use: happiness, counts, stats).
	Engine() Engine
	// StepAttempt samples an unhappy agent and a vacant site and
	// relocates the agent iff it would be happy there; done reports
	// that no unhappy agent remains.
	StepAttempt() (moved, done bool)
	// Run performs attempts until no unhappy agent remains, maxAttempts
	// are spent, or failStreak consecutive attempts fail.
	Run(maxAttempts, failStreak int64) (performed int64, done bool)
	// Moves returns the number of successful relocations so far.
	Moves() int64
	// Attempts returns the number of attempted relocations so far.
	Attempts() int64
	// Counts returns the numbers of unhappy agents and vacant sites.
	Counts() (unhappy, vacant int)
	// CheckInvariants verifies bookkeeping against brute force.
	CheckInvariants() error
}

// The reference relocation engine satisfies the shared move contract.
var _ MoveEngine = (*Move)(nil)
