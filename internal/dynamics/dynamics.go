// Package dynamics implements the segregation process itself: the
// Glauber (open-system) dynamics of the paper and a Kawasaki
// (closed-system) swap baseline.
//
// The Glauber process is simulated exactly by kinetic Monte Carlo
// (Gillespie): every agent carries an independent rate-1 Poisson clock,
// and when a clock rings the agent flips iff it is unhappy and the flip
// makes it happy. Rings that cause no flip do not change the state, so
// the embedded jump chain restricted to effective events picks a
// uniformly random *flippable* agent, and by memorylessness the waiting
// time until the next effective event is Exp(k) where k is the number of
// flippable agents. This equivalence is stated in Section II.A of the
// paper ("the process dynamics are equivalent to a discrete-time model
// where at each discrete time step one unhappy agent is chosen uniformly
// at random").
//
// Process is the *reference* engine: it maintains, for every site u,
// the number of +1 agents in its neighborhood N(u) (the Chebyshev ball
// of radius w including u) as scalar counts, so a flip performs
// (2w+1)^2 scalar count updates and refreshes plus O(1) amortized set
// maintenance. It is the readable specification of the dynamics; the
// bit-packed engine in the fastglauber subpackage executes the same
// flip bit-identically at a fraction of the cost (see the Engine
// interface and internal/difftest for the equivalence contract). The
// sum Phi of same-type counts over all agents is the paper's Lyapunov
// function: it strictly increases with every admissible flip, which
// proves termination.
package dynamics

import (
	"errors"
	"fmt"

	"gridseg/internal/geom"
	"gridseg/internal/grid"
	"gridseg/internal/rng"
	"gridseg/internal/theory"
)

// Process is the Glauber segregation process on a torus lattice.
// Construct with New; the zero value is not usable.
type Process struct {
	lat    *grid.Lattice
	src    *rng.Source
	n      int // lattice side
	w      int // horizon
	nbhd   int // N = (2w+1)^2
	thresh int // happiness threshold: same-type count required
	plus   []int32
	// Flippable-set bookkeeping: flippable lists the site indices that
	// are currently admissible flips; pos[i] is the index of site i in
	// flippable, or -1.
	flippable []int32
	pos       []int32
	unhappy   []bool
	nUnhappy  int
	time      float64
	flips     int64
}

// New creates a Glauber process over the given lattice with horizon w and
// intolerance tauTilde (the integer happiness threshold is
// ceil(tauTilde*N), per the paper's definition tau = ceil(tauTilde N)/N).
// The lattice is used in place and mutated by the process.
func New(lat *grid.Lattice, w int, tauTilde float64, src *rng.Source) (*Process, error) {
	if w < 1 {
		return nil, errors.New("dynamics: horizon must be >= 1")
	}
	if 2*w+1 > lat.N() {
		return nil, fmt.Errorf("dynamics: neighborhood side %d exceeds lattice side %d", 2*w+1, lat.N())
	}
	if tauTilde < 0 || tauTilde > 1 {
		return nil, errors.New("dynamics: intolerance must be in [0, 1]")
	}
	if src == nil {
		return nil, errors.New("dynamics: nil random source")
	}
	nbhd := geom.SquareSize(w)
	p := &Process{
		lat:     lat,
		src:     src,
		n:       lat.N(),
		w:       w,
		nbhd:    nbhd,
		thresh:  theory.Threshold(tauTilde, nbhd),
		plus:    lat.WindowCounts(w),
		pos:     make([]int32, lat.Sites()),
		unhappy: make([]bool, lat.Sites()),
	}
	for i := range p.pos {
		p.pos[i] = -1
	}
	for i := 0; i < lat.Sites(); i++ {
		p.refresh(i)
	}
	return p, nil
}

// Lattice returns the underlying lattice (live view).
func (p *Process) Lattice() *grid.Lattice { return p.lat }

// Horizon returns the neighborhood radius w.
func (p *Process) Horizon() int { return p.w }

// NeighborhoodSize returns N = (2w+1)^2.
func (p *Process) NeighborhoodSize() int { return p.nbhd }

// Threshold returns the integer happiness threshold tau*N.
func (p *Process) Threshold() int { return p.thresh }

// Tau returns the rational intolerance tau = threshold/N.
func (p *Process) Tau() float64 { return float64(p.thresh) / float64(p.nbhd) }

// Time returns the elapsed continuous time.
func (p *Process) Time() float64 { return p.time }

// Flips returns the number of effective flips so far.
func (p *Process) Flips() int64 { return p.flips }

// SameCount returns the number of agents in N(u) sharing u's type,
// including u itself — the numerator of the happiness ratio s(u).
func (p *Process) SameCount(i int) int {
	if p.lat.SpinAt(i) == grid.Plus {
		return int(p.plus[i])
	}
	return p.nbhd - int(p.plus[i])
}

// Happy reports whether the agent at site i is happy: s(u) >= tau.
func (p *Process) Happy(i int) bool { return p.SameCount(i) >= p.thresh }

// HappyAs reports whether a hypothetical agent of the given spin placed
// at site i would be happy — the predicate of the paper's event
// A = {u+ would be happy at the location of v} (Eq. 13).
func (p *Process) HappyAs(i int, s grid.Spin) bool {
	cnt := int(p.plus[i])
	if p.lat.SpinAt(i) != grid.Plus {
		// Replacing a minus occupant by a plus adds one plus.
		cnt++
	}
	if s == grid.Plus {
		return cnt >= p.thresh
	}
	// Same reasoning mirrored for a minus probe.
	minus := p.nbhd - int(p.plus[i])
	if p.lat.SpinAt(i) != grid.Minus {
		minus++
	}
	return minus >= p.thresh
}

// Flippable reports whether site i is an admissible flip: the agent is
// unhappy and flipping would make it happy (for tau < 1/2 the second
// condition is automatic; for tau > 1/2 it is the paper's
// "super-unhappy" condition of Section IV.C).
func (p *Process) Flippable(i int) bool {
	same := p.SameCount(i)
	return same < p.thresh && p.nbhd-same+1 >= p.thresh
}

// FlippableCount returns the number of currently admissible flips.
func (p *Process) FlippableCount() int { return len(p.flippable) }

// UnhappyCount returns the number of currently unhappy agents.
func (p *Process) UnhappyCount() int { return p.nUnhappy }

// HappyFraction returns the fraction of happy agents.
func (p *Process) HappyFraction() float64 {
	return 1 - float64(p.nUnhappy)/float64(p.lat.Sites())
}

// Fixated reports whether the process has terminated: no unhappy agent
// can become happy by flipping.
func (p *Process) Fixated() bool { return len(p.flippable) == 0 }

// refresh recomputes the unhappy flag and flippable-set membership of
// site i from the current counts.
func (p *Process) refresh(i int) {
	same := p.SameCount(i)
	unhappy := same < p.thresh
	if unhappy != p.unhappy[i] {
		p.unhappy[i] = unhappy
		if unhappy {
			p.nUnhappy++
		} else {
			p.nUnhappy--
		}
	}
	flippable := unhappy && p.nbhd-same+1 >= p.thresh
	in := p.pos[i] >= 0
	switch {
	case flippable && !in:
		p.pos[i] = int32(len(p.flippable))
		p.flippable = append(p.flippable, int32(i))
	case !flippable && in:
		// Swap-remove from the flippable slice.
		j := p.pos[i]
		last := p.flippable[len(p.flippable)-1]
		p.flippable[j] = last
		p.pos[last] = j
		p.flippable = p.flippable[:len(p.flippable)-1]
		p.pos[i] = -1
	}
}

// applyFlip flips site i and updates counts and set membership of every
// affected site (the Chebyshev ball of radius w around i).
func (p *Process) applyFlip(i int) {
	newSpin := p.lat.Flip(i)
	var delta int32 = 1
	if newSpin == grid.Minus {
		delta = -1
	}
	n, w := p.n, p.w
	x0, y0 := i%n, i/n
	for dy := -w; dy <= w; dy++ {
		y := y0 + dy
		if y < 0 {
			y += n
		} else if y >= n {
			y -= n
		}
		row := y * n
		for dx := -w; dx <= w; dx++ {
			x := x0 + dx
			if x < 0 {
				x += n
			} else if x >= n {
				x -= n
			}
			j := row + x
			p.plus[j] += delta
			p.refresh(j)
		}
	}
}

// ForceFlip flips site i unconditionally and updates all bookkeeping.
// The segregation process never does this on its own; it exists for the
// constructions of the core package (constrained cascades inside radical
// regions) and for adversarial tests (firewall invariance).
func (p *Process) ForceFlip(i int) { p.applyFlip(i) }

// Step performs one effective event: it picks a uniformly random
// flippable agent, advances continuous time by Exp(k) (k = number of
// flippable agents), and flips the agent. It returns the flipped site
// index, or ok=false if the process has already fixated.
func (p *Process) Step() (site int, ok bool) {
	k := len(p.flippable)
	if k == 0 {
		return 0, false
	}
	p.time += p.src.ExpRate(float64(k))
	i := int(p.flippable[p.src.Intn(k)])
	p.applyFlip(i)
	p.flips++
	return i, true
}

// Run advances the process until fixation or until maxFlips additional
// flips have been performed (maxFlips <= 0 means no limit; termination
// is guaranteed by the Lyapunov argument). It returns the number of
// flips performed by this call and whether the process is fixated.
func (p *Process) Run(maxFlips int64) (performed int64, fixated bool) {
	for maxFlips <= 0 || performed < maxFlips {
		if _, ok := p.Step(); !ok {
			return performed, true
		}
		performed++
	}
	return performed, p.Fixated()
}

// Phi returns the paper's Lyapunov function: the sum over all agents u of
// the number of same-type agents in N(u). It is recomputed from the
// maintained counts in O(n^2).
func (p *Process) Phi() int64 {
	var phi int64
	for i := 0; i < p.lat.Sites(); i++ {
		phi += int64(p.SameCount(i))
	}
	return phi
}

// MaxFlipsBound returns the a-priori bound on the total number of flips
// implied by the Lyapunov argument: Phi <= N*n^2 and every flip increases
// Phi by at least 2.
func (p *Process) MaxFlipsBound() int64 {
	return int64(p.nbhd) * int64(p.lat.Sites()) / 2
}

// PlusCount returns the maintained count of +1 agents in N(i).
func (p *Process) PlusCount(i int) int { return int(p.plus[i]) }

// CheckInvariants verifies the internal bookkeeping against a brute-force
// recomputation; it is used by tests and returns a descriptive error on
// the first mismatch.
func (p *Process) CheckInvariants() error {
	fresh := p.lat.WindowCounts(p.w)
	unhappyCount := 0
	inSet := make(map[int32]bool, len(p.flippable))
	for j, site := range p.flippable {
		if p.pos[site] != int32(j) {
			return fmt.Errorf("pos[%d] = %d, want %d", site, p.pos[site], j)
		}
		if inSet[site] {
			return fmt.Errorf("site %d appears twice in flippable set", site)
		}
		inSet[site] = true
	}
	for i := 0; i < p.lat.Sites(); i++ {
		if p.plus[i] != fresh[i] {
			return fmt.Errorf("plus[%d] = %d, want %d", i, p.plus[i], fresh[i])
		}
		same := p.SameCount(i)
		unhappy := same < p.thresh
		if unhappy != p.unhappy[i] {
			return fmt.Errorf("unhappy[%d] = %v, want %v", i, p.unhappy[i], unhappy)
		}
		if unhappy {
			unhappyCount++
		}
		flippable := unhappy && p.nbhd-same+1 >= p.thresh
		if flippable != inSet[int32(i)] {
			return fmt.Errorf("flippable membership of %d = %v, want %v", i, inSet[int32(i)], flippable)
		}
		if !inSet[int32(i)] && p.pos[i] != -1 {
			return fmt.Errorf("pos[%d] = %d for non-member", i, p.pos[i])
		}
	}
	if unhappyCount != p.nUnhappy {
		return fmt.Errorf("nUnhappy = %d, want %d", p.nUnhappy, unhappyCount)
	}
	return nil
}
