// Package dynamics implements the segregation process itself: the
// Glauber (open-system) dynamics of the paper and a Kawasaki
// (closed-system) swap baseline.
//
// The Glauber process is simulated exactly by kinetic Monte Carlo
// (Gillespie): every agent carries an independent rate-1 Poisson clock,
// and when a clock rings the agent flips iff it is unhappy and the flip
// makes it happy. Rings that cause no flip do not change the state, so
// the embedded jump chain restricted to effective events picks a
// uniformly random *flippable* agent, and by memorylessness the waiting
// time until the next effective event is Exp(k) where k is the number of
// flippable agents. This equivalence is stated in Section II.A of the
// paper ("the process dynamics are equivalent to a discrete-time model
// where at each discrete time step one unhappy agent is chosen uniformly
// at random").
//
// Process is the *reference* engine: it maintains, for every site u,
// the number of +1 agents in its neighborhood N(u) (the Chebyshev ball
// of radius w including u) as scalar counts, so a flip performs
// (2w+1)^2 scalar count updates and refreshes plus O(1) amortized set
// maintenance. It is the readable specification of the dynamics; the
// bit-packed engine in the fastglauber subpackage executes the same
// flip bit-identically at a fraction of the cost (see the Engine
// interface and internal/difftest for the equivalence contract). The
// sum Phi of same-type counts over all agents is the paper's Lyapunov
// function: it strictly increases with every admissible flip, which
// proves termination.
//
// Beyond the paper's exact setting, the reference engine runs every
// scenario of the topology subsystem (see NewScenario and the Scenario
// struct): open hard-wall boundaries with clamped windows, vacancy
// lattices, and per-site intolerance fields — plus the relocation
// dynamic Move, where unhappy agents migrate into vacant sites. The
// bit-packed fast engine covers the same scenario space for all three
// dynamics (per-site thresholds compiled into boundary tables for
// flip and swap, derived from packed occupancy lanes for Move; see
// fastglauber).
package dynamics

import (
	"errors"
	"fmt"

	"gridseg/internal/geom"
	"gridseg/internal/grid"
	"gridseg/internal/rng"
	"gridseg/internal/sampleset"
	"gridseg/internal/theory"
)

// Scenario selects the topology variants a Process runs under. The
// zero value is the paper's setting: wrap-around torus, full
// occupancy (vacancies are detected from the lattice itself), one
// global tau. See internal/topology for the user-facing spec layer.
type Scenario struct {
	// Open selects hard-wall boundaries: neighborhoods clamp at the
	// grid edges instead of wrapping, so edge agents see truncated
	// windows and per-site thresholds ceil(tau * |N(u)|).
	Open bool
	// Taus, when non-nil, is the per-site intolerance field (quenched
	// disorder, length n^2, row-major); nil means the single global
	// tau. Under flip and swap dynamics, where agents never relocate,
	// per-site and per-agent intolerance coincide.
	Taus []float64
}

// Process is the Glauber segregation process on a torus lattice.
// Construct with New (the paper's setting) or NewScenario; the zero
// value is not usable.
//
// Happiness generalizes across scenarios as: agent u is happy iff
// same(u) >= ceil(tau_u * occ(u)), where occ(u) counts the occupied
// sites of u's (possibly edge-clamped) window and same(u) counts the
// ones sharing u's type, both including u itself. With full occupancy,
// a torus, and a global tau this is exactly the paper's definition,
// and the scalar fast path below (nil occ/threshOf/tauOf arrays) runs
// the identical pre-scenario code: default-scenario trajectories are
// bit-for-bit stable across the scenario subsystem's introduction.
type Process struct {
	lat    *grid.Lattice
	src    *rng.Source
	n      int // lattice side
	w      int // horizon
	nbhd   int // N = (2w+1)^2
	thresh int // global happiness threshold: same-type count required
	tau    float64
	open   bool // hard-wall boundary (windows clamp, not wrap)
	agents int  // occupied sites (= Sites() when fully occupied)
	plus   []int32
	// Scenario state, all nil in the default scenario: occ holds the
	// occupied count of every site's window, threshOf the per-site
	// integer thresholds, tauOf the per-site intolerance.
	occ      []int32
	threshOf []int32
	tauOf    []float64
	// flippable is the indexed sampler over currently admissible flips
	// (see internal/sampleset); its iteration order drives the uniform
	// pick of Step and is part of the bit-identity contract.
	flippable *sampleset.Set
	unhappy   []bool
	nUnhappy  int
	time      float64
	flips     int64
}

// New creates a Glauber process over the given lattice with horizon w and
// intolerance tauTilde (the integer happiness threshold is
// ceil(tauTilde*N), per the paper's definition tau = ceil(tauTilde N)/N).
// The lattice is used in place and mutated by the process.
func New(lat *grid.Lattice, w int, tauTilde float64, src *rng.Source) (*Process, error) {
	return NewScenario(lat, w, tauTilde, Scenario{}, src)
}

// NewScenario creates a Glauber process under the given scenario:
// open or torus boundary, optional per-site intolerance, and vacancies
// (read off the lattice — build it with grid.RandomScenario). The
// process consumes its random source identically in every scenario
// (only Step draws randomness), so default-scenario seeds and
// trajectories are unchanged by this constructor's existence.
func NewScenario(lat *grid.Lattice, w int, tauTilde float64, sc Scenario, src *rng.Source) (*Process, error) {
	if w < 1 {
		return nil, errors.New("dynamics: horizon must be >= 1")
	}
	if 2*w+1 > lat.N() {
		return nil, fmt.Errorf("dynamics: neighborhood side %d exceeds lattice side %d", 2*w+1, lat.N())
	}
	if tauTilde < 0 || tauTilde > 1 {
		return nil, errors.New("dynamics: intolerance must be in [0, 1]")
	}
	if src == nil {
		return nil, errors.New("dynamics: nil random source")
	}
	if sc.Taus != nil && len(sc.Taus) != lat.Sites() {
		return nil, fmt.Errorf("dynamics: per-site tau field has %d entries, want %d", len(sc.Taus), lat.Sites())
	}
	for _, tv := range sc.Taus {
		if tv < 0 || tv > 1 {
			return nil, fmt.Errorf("dynamics: per-site intolerance %v out of [0, 1]", tv)
		}
	}
	nbhd := geom.SquareSize(w)
	p := &Process{
		lat:       lat,
		src:       src,
		n:         lat.N(),
		w:         w,
		nbhd:      nbhd,
		thresh:    theory.Threshold(tauTilde, nbhd),
		tau:       tauTilde,
		open:      sc.Open,
		agents:    lat.CountOccupied(),
		plus:      lat.PlusWindowCounts(w, sc.Open),
		flippable: sampleset.New(lat.Sites()),
		unhappy:   make([]bool, lat.Sites()),
	}
	// Materialize the per-site arrays only when some axis deviates from
	// the paper's setting; the nil arrays are the scalar fast path.
	if sc.Open || p.agents < lat.Sites() || sc.Taus != nil {
		p.occ = lat.OccupiedWindowCounts(w, sc.Open)
		p.tauOf = sc.Taus
		p.threshOf = make([]int32, lat.Sites())
		for i := range p.threshOf {
			p.threshOf[i] = int32(theory.Threshold(p.tauAt(i), int(p.occ[i])))
		}
	}
	for i := 0; i < lat.Sites(); i++ {
		p.refresh(i)
	}
	return p, nil
}

// occAt returns the occupied count of N(i) (the scenario-aware
// generalization of the constant neighborhood size N).
func (p *Process) occAt(i int) int {
	if p.occ == nil {
		return p.nbhd
	}
	return int(p.occ[i])
}

// tauAt returns the intolerance in force at site i.
func (p *Process) tauAt(i int) float64 {
	if p.tauOf == nil {
		return p.tau
	}
	return p.tauOf[i]
}

// threshAt returns the integer happiness threshold of site i,
// ceil(tau_i * occ_i).
func (p *Process) threshAt(i int) int {
	if p.threshOf == nil {
		return p.thresh
	}
	return int(p.threshOf[i])
}

// Lattice returns the underlying lattice (live view).
func (p *Process) Lattice() *grid.Lattice { return p.lat }

// Horizon returns the neighborhood radius w.
func (p *Process) Horizon() int { return p.w }

// NeighborhoodSize returns N = (2w+1)^2.
func (p *Process) NeighborhoodSize() int { return p.nbhd }

// Threshold returns the integer happiness threshold tau*N.
func (p *Process) Threshold() int { return p.thresh }

// Tau returns the rational intolerance tau = threshold/N.
func (p *Process) Tau() float64 { return float64(p.thresh) / float64(p.nbhd) }

// Time returns the elapsed continuous time.
func (p *Process) Time() float64 { return p.time }

// Flips returns the number of effective flips so far.
func (p *Process) Flips() int64 { return p.flips }

// SameCount returns the number of agents in N(u) sharing u's type,
// including u itself — the numerator of the happiness ratio s(u).
// Vacant sites hold no agent and return 0.
func (p *Process) SameCount(i int) int {
	switch p.lat.SpinAt(i) {
	case grid.Plus:
		return int(p.plus[i])
	case grid.Minus:
		return p.occAt(i) - int(p.plus[i])
	}
	return 0
}

// Happy reports whether the agent at site i is happy: s(u) >= tau.
// Vacant sites are vacuously happy.
func (p *Process) Happy(i int) bool {
	if !p.lat.OccupiedAt(i) {
		return true
	}
	return p.SameCount(i) >= p.threshAt(i)
}

// HappyAs reports whether a hypothetical agent of the given spin placed
// at site i would be happy — the predicate of the paper's event
// A = {u+ would be happy at the location of v} (Eq. 13). An occupied
// site's occupant is replaced by the probe; a vacant site gains the
// probe as one extra occupant (with the threshold recomputed for the
// grown occupied count).
func (p *Process) HappyAs(i int, s grid.Spin) bool {
	occ := p.occAt(i)
	cnt := int(p.plus[i])
	thresh := p.threshAt(i)
	if !p.lat.OccupiedAt(i) {
		occ++
		if p.threshOf != nil {
			thresh = theory.Threshold(p.tauAt(i), occ)
		}
	}
	if s == grid.Plus {
		if p.lat.SpinAt(i) != grid.Plus {
			// The probe itself adds one plus.
			cnt++
		}
		return cnt >= thresh
	}
	// Same reasoning mirrored for a minus probe. On a vacant site occ
	// was already grown by the probe, so `minus` counts it; only a
	// displaced plus occupant needs the correction.
	minus := occ - int(p.plus[i])
	if p.lat.SpinAt(i) == grid.Plus {
		// The probe replaces the plus occupant by a minus, which
		// `minus` has not counted yet.
		minus++
	}
	return minus >= thresh
}

// Flippable reports whether site i is an admissible flip: the agent is
// unhappy and flipping would make it happy (for tau < 1/2 the second
// condition is automatic; for tau > 1/2 it is the paper's
// "super-unhappy" condition of Section IV.C). Vacant sites are never
// flippable.
func (p *Process) Flippable(i int) bool {
	if !p.lat.OccupiedAt(i) {
		return false
	}
	same := p.SameCount(i)
	th := p.threshAt(i)
	return same < th && p.occAt(i)-same+1 >= th
}

// FlippableCount returns the number of currently admissible flips.
func (p *Process) FlippableCount() int { return p.flippable.Len() }

// UnhappyCount returns the number of currently unhappy agents.
func (p *Process) UnhappyCount() int { return p.nUnhappy }

// HappyFraction returns the fraction of happy agents (over occupied
// sites; vacancies hold no agent to be happy or unhappy). A lattice
// with no agents at all is vacuously fully happy.
func (p *Process) HappyFraction() float64 {
	if p.agents == 0 {
		return 1
	}
	return 1 - float64(p.nUnhappy)/float64(p.agents)
}

// Agents returns the number of occupied sites.
func (p *Process) Agents() int { return p.agents }

// Fixated reports whether the process has terminated: no unhappy agent
// can become happy by flipping.
func (p *Process) Fixated() bool { return p.flippable.Len() == 0 }

// refresh recomputes the unhappy flag and flippable-set membership of
// site i from the current counts. Vacant sites are neither unhappy nor
// flippable.
func (p *Process) refresh(i int) {
	var unhappy, flippable bool
	if p.lat.OccupiedAt(i) {
		same := p.SameCount(i)
		th := p.threshAt(i)
		unhappy = same < th
		flippable = unhappy && p.occAt(i)-same+1 >= th
	}
	if unhappy != p.unhappy[i] {
		p.unhappy[i] = unhappy
		if unhappy {
			p.nUnhappy++
		} else {
			p.nUnhappy--
		}
	}
	p.flippable.Update(i, flippable)
}

// applyFlip flips site i and updates counts and set membership of every
// affected site (the Chebyshev ball of radius w around i, clamped at
// the edges under the open boundary).
func (p *Process) applyFlip(i int) {
	newSpin := p.lat.Flip(i)
	var delta int32 = 1
	if newSpin == grid.Minus {
		delta = -1
	}
	n, w, open := p.n, p.w, p.open
	x0, y0 := i%n, i/n
	for dy := -w; dy <= w; dy++ {
		y := y0 + dy
		if y < 0 {
			if open {
				continue
			}
			y += n
		} else if y >= n {
			if open {
				continue
			}
			y -= n
		}
		row := y * n
		for dx := -w; dx <= w; dx++ {
			x := x0 + dx
			if x < 0 {
				if open {
					continue
				}
				x += n
			} else if x >= n {
				if open {
					continue
				}
				x -= n
			}
			j := row + x
			p.plus[j] += delta
			p.refresh(j)
		}
	}
}

// forEachWindowSite visits every site of N(i) (including i) in
// row-major offset order, wrapping or clamping per the boundary — the
// shared iteration used by the swap and relocation dynamics, matching
// applyFlip's visit order exactly.
func (p *Process) forEachWindowSite(i int, visit func(j int)) {
	n, w, open := p.n, p.w, p.open
	x0, y0 := i%n, i/n
	for dy := -w; dy <= w; dy++ {
		y := y0 + dy
		if y < 0 {
			if open {
				continue
			}
			y += n
		} else if y >= n {
			if open {
				continue
			}
			y -= n
		}
		row := y * n
		for dx := -w; dx <= w; dx++ {
			x := x0 + dx
			if x < 0 {
				if open {
					continue
				}
				x += n
			} else if x >= n {
				if open {
					continue
				}
				x -= n
			}
			visit(row + x)
		}
	}
}

// inWindow reports whether site j lies in N(i), respecting the
// boundary (wrapped Chebyshev distance on the torus, plain distance
// under open walls).
func (p *Process) inWindow(i, j int) bool {
	n, w := p.n, p.w
	dx := abs(i%n - j%n)
	dy := abs(i/n - j/n)
	if !p.open {
		if n-dx < dx {
			dx = n - dx
		}
		if n-dy < dy {
			dy = n - dy
		}
	}
	return dx <= w && dy <= w
}

func abs(a int) int {
	if a < 0 {
		return -a
	}
	return a
}

// place puts an agent of the given type on the vacant site i, updating
// occupancy, counts, per-site thresholds, and classifications of every
// affected site. It is the relocation dynamic's primitive; the flip
// dynamics never change occupancy. Requires materialized scenario
// arrays (any lattice with vacancies has them).
func (p *Process) place(i int, s grid.Spin) {
	if p.lat.OccupiedAt(i) || s == grid.None {
		panic("dynamics: place on occupied site or with vacant spin")
	}
	p.lat.SetAt(i, s)
	p.agents++
	var dPlus int32
	if s == grid.Plus {
		dPlus = 1
	}
	p.forEachWindowSite(i, func(j int) {
		p.occ[j]++
		p.plus[j] += dPlus
		p.threshOf[j] = int32(theory.Threshold(p.tauAt(j), int(p.occ[j])))
		p.refresh(j)
	})
}

// remove vacates the occupied site i, the inverse of place.
func (p *Process) remove(i int) grid.Spin {
	s := p.lat.SpinAt(i)
	if s == grid.None {
		panic("dynamics: remove on vacant site")
	}
	p.lat.SetAt(i, grid.None)
	p.agents--
	var dPlus int32
	if s == grid.Plus {
		dPlus = 1
	}
	p.forEachWindowSite(i, func(j int) {
		p.occ[j]--
		p.plus[j] -= dPlus
		p.threshOf[j] = int32(theory.Threshold(p.tauAt(j), int(p.occ[j])))
		p.refresh(j)
	})
	return s
}

// ForceFlip flips site i unconditionally and updates all bookkeeping.
// The segregation process never does this on its own; it exists for the
// constructions of the core package (constrained cascades inside radical
// regions) and for adversarial tests (firewall invariance).
func (p *Process) ForceFlip(i int) { p.applyFlip(i) }

// Step performs one effective event: it picks a uniformly random
// flippable agent, advances continuous time by Exp(k) (k = number of
// flippable agents), and flips the agent. It returns the flipped site
// index, or ok=false if the process has already fixated.
func (p *Process) Step() (site int, ok bool) {
	k := p.flippable.Len()
	if k == 0 {
		return 0, false
	}
	p.time += p.src.ExpRate(float64(k))
	i := int(p.flippable.Sample(p.src))
	p.applyFlip(i)
	p.flips++
	return i, true
}

// Run advances the process until fixation or until maxFlips additional
// flips have been performed (maxFlips <= 0 means no limit; termination
// is guaranteed by the Lyapunov argument). It returns the number of
// flips performed by this call and whether the process is fixated.
func (p *Process) Run(maxFlips int64) (performed int64, fixated bool) {
	for maxFlips <= 0 || performed < maxFlips {
		if _, ok := p.Step(); !ok {
			return performed, true
		}
		performed++
	}
	return performed, p.Fixated()
}

// Phi returns the paper's Lyapunov function: the sum over all agents u of
// the number of same-type agents in N(u). It is recomputed from the
// maintained counts in O(n^2); vacant sites contribute 0.
func (p *Process) Phi() int64 {
	var phi int64
	for i := 0; i < p.lat.Sites(); i++ {
		phi += int64(p.SameCount(i))
	}
	return phi
}

// MaxFlipsBound returns the a-priori bound on the total number of flips
// implied by the Lyapunov argument: Phi <= N*n^2 and every flip increases
// Phi by at least 2.
func (p *Process) MaxFlipsBound() int64 {
	return int64(p.nbhd) * int64(p.lat.Sites()) / 2
}

// PlusCount returns the maintained count of +1 agents in N(i).
func (p *Process) PlusCount(i int) int { return int(p.plus[i]) }

// CheckInvariants verifies the internal bookkeeping against a brute-force
// recomputation; it is used by tests and returns a descriptive error on
// the first mismatch.
func (p *Process) CheckInvariants() error {
	fresh := p.lat.PlusWindowCounts(p.w, p.open)
	unhappyCount := 0
	var freshOcc []int32
	if p.occ != nil {
		freshOcc = p.lat.OccupiedWindowCounts(p.w, p.open)
	}
	if got := p.lat.CountOccupied(); got != p.agents {
		return fmt.Errorf("agents = %d, want %d", p.agents, got)
	}
	wantFlippable := make([]bool, p.lat.Sites())
	for i := 0; i < p.lat.Sites(); i++ {
		if p.plus[i] != fresh[i] {
			return fmt.Errorf("plus[%d] = %d, want %d", i, p.plus[i], fresh[i])
		}
		if p.occ != nil {
			if p.occ[i] != freshOcc[i] {
				return fmt.Errorf("occ[%d] = %d, want %d", i, p.occ[i], freshOcc[i])
			}
			if want := int32(theory.Threshold(p.tauAt(i), int(p.occ[i]))); p.threshOf[i] != want {
				return fmt.Errorf("threshOf[%d] = %d, want %d", i, p.threshOf[i], want)
			}
		}
		var unhappy bool
		if p.lat.OccupiedAt(i) {
			same := p.SameCount(i)
			th := p.threshAt(i)
			unhappy = same < th
			wantFlippable[i] = unhappy && p.occAt(i)-same+1 >= th
		}
		if unhappy != p.unhappy[i] {
			return fmt.Errorf("unhappy[%d] = %v, want %v", i, p.unhappy[i], unhappy)
		}
		if unhappy {
			unhappyCount++
		}
	}
	if unhappyCount != p.nUnhappy {
		return fmt.Errorf("nUnhappy = %d, want %d", p.nUnhappy, unhappyCount)
	}
	return p.flippable.CheckInvariants("flippable", func(i int) bool { return wantFlippable[i] })
}
