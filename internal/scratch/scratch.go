// Package scratch is a size-adaptive free list for the large temporary
// buffers of the hot counting and measurement passes (row-window sums,
// BFS distance maps, cluster labels). The batch sweep engine runs one
// model per cell and measures it, so without reuse every cell pays a
// fresh round of O(n^2) scratch allocations; recycling them through a
// sync.Pool — whose per-P caches make this per-worker reuse without
// threading state through every call — removes that churn while
// leaving every public API returning ordinary, caller-owned slices.
//
// Buffers come back with arbitrary contents: callers must fully
// initialize what they take (every current user writes each entry
// before reading it), so pooling can never change a result.
package scratch

import "sync"

var i32Pool sync.Pool

// I32 returns a pointer to a length-n []int32 with arbitrary contents,
// reusing a pooled buffer when one of sufficient capacity is
// available. Return it with PutI32 when done.
func I32(n int) *[]int32 {
	if v, _ := i32Pool.Get().(*[]int32); v != nil && cap(*v) >= n {
		*v = (*v)[:n]
		return v
	}
	b := make([]int32, n)
	return &b
}

// PutI32 recycles a buffer obtained from I32. The caller must not use
// the slice afterwards.
func PutI32(b *[]int32) { i32Pool.Put(b) }
