package ring

import (
	"testing"
	"testing/quick"

	"gridseg/internal/rng"
)

func TestValidation(t *testing.T) {
	if _, err := NewRandom(2, 1, 0.5, 0.5, rng.New(1)); err == nil {
		t.Fatal("want error for tiny ring")
	}
	if _, err := NewRandom(10, 5, 0.5, 0.5, rng.New(1)); err == nil {
		t.Fatal("want error for oversized horizon")
	}
	if _, err := NewRandom(10, 1, 1.5, 0.5, rng.New(1)); err == nil {
		t.Fatal("want error for invalid tau")
	}
	if _, err := NewRandom(10, 1, 0.5, 0.5, nil); err == nil {
		t.Fatal("want error for nil source")
	}
}

func TestWindowInitializationMatchesBruteForce(t *testing.T) {
	p, err := NewRandom(31, 3, 0.45, 0.5, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < p.Len(); i++ {
		want := 0
		for d := -3; d <= 3; d++ {
			if p.Spin(i+d) == Plus {
				want++
			}
		}
		got := int(p.plus[i])
		if got != want {
			t.Fatalf("site %d: window %d, brute %d", i, got, want)
		}
	}
}

func TestSingleDissenterRing(t *testing.T) {
	spins := make([]Spin, 11)
	for i := range spins {
		spins[i] = Minus
	}
	spins[5] = Plus
	p, err := New(spins, 1, 0.5, rng.New(5)) // thresh = ceil(1.5) = 2
	if err != nil {
		t.Fatal(err)
	}
	// The + agent has same-count 1 < 2: flippable. Neighbors have
	// same-count 2 >= 2: happy.
	if p.FlippableCount() != 1 {
		t.Fatalf("flippable = %d, want 1", p.FlippableCount())
	}
	site, ok := p.Step()
	if !ok || site != 5 {
		t.Fatalf("step = %d, %v", site, ok)
	}
	if !p.Fixated() {
		t.Fatal("must fixate after removing the dissenter")
	}
	if got := p.RunLengths(); len(got) != 1 || got[0] != 11 {
		t.Fatalf("run lengths = %v, want [11]", got)
	}
}

func TestNewCopiesInput(t *testing.T) {
	spins := []Spin{Plus, Minus, Plus, Minus, Plus}
	p, err := New(spins, 1, 0.4, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	spins[0] = Minus
	if p.Spin(0) != Plus {
		t.Fatal("New must copy the input slice")
	}
	out := p.Spins()
	out[1] = Plus
	if p.Spin(1) != Minus {
		t.Fatal("Spins must return a copy")
	}
}

func TestLyapunovAndTermination(t *testing.T) {
	p, err := NewRandom(200, 2, 0.45, 0.5, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	prev := p.Phi()
	for i := 0; i < 500; i++ {
		if _, ok := p.Step(); !ok {
			break
		}
		phi := p.Phi()
		if phi <= prev {
			t.Fatalf("ring Phi did not increase at flip %d", i+1)
		}
		prev = phi
	}
	performed, fixated := p.Run(0)
	_ = performed
	if !fixated {
		t.Fatal("ring process must terminate")
	}
	// At fixation, every unhappy agent cannot become happy by flipping.
	for i := 0; i < p.Len(); i++ {
		same := p.SameCount(i)
		if same < p.Threshold() && (2*p.w+1)-same+1 >= p.Threshold() {
			t.Fatalf("agent %d still flippable at fixation", i)
		}
	}
}

func TestRunLengthsHandCases(t *testing.T) {
	cases := []struct {
		spins []Spin
		want  []int
	}{
		{[]Spin{Plus, Plus, Plus}, []int{3}},
		{[]Spin{Plus, Minus, Plus, Minus}, []int{1, 1, 1, 1}},
		// Circular: the run wraps around the seam.
		{[]Spin{Plus, Minus, Minus, Plus}, []int{2, 2}},
	}
	for i, c := range cases {
		got := RunLengths(c.spins)
		if len(got) != len(c.want) {
			t.Fatalf("case %d: runs %v, want %v", i, got, c.want)
		}
		gotSum, wantSum := 0, 0
		for _, v := range got {
			gotSum += v
		}
		for _, v := range c.want {
			wantSum += v
		}
		if gotSum != wantSum || gotSum != len(c.spins) {
			t.Fatalf("case %d: runs %v do not cover the ring", i, got)
		}
	}
	if got := RunLengths(nil); got != nil {
		t.Fatal("empty configuration must have no runs")
	}
}

func TestMeanAndLongestRun(t *testing.T) {
	spins := []Spin{Plus, Plus, Minus, Minus, Minus, Plus}
	// Circular runs: the Plus at the end joins the two at the start:
	// runs are [3 (plus), 3 (minus)].
	if got := MeanRunLength(spins); got != 3 {
		t.Fatalf("mean run = %v, want 3", got)
	}
	if got := LongestRun(spins); got != 3 {
		t.Fatalf("longest run = %v, want 3", got)
	}
}

// The 1-D contrast the paper cites: more intolerant (tau near 1/2 from
// below, but above the ~0.35 threshold) rings develop long runs, while
// very tolerant rings stay near the initial run-length statistics.
func TestSegregationGrowsInExponentialRegime(t *testing.T) {
	const n, w = 400, 4 // N = 9
	src := rng.New(11)
	meanAt := func(tau float64, label uint64) float64 {
		var acc float64
		const reps = 5
		for r := uint64(0); r < reps; r++ {
			p, err := NewRandom(n, w, tau, 0.5, src.Split(label*100+r))
			if err != nil {
				t.Fatal(err)
			}
			p.Run(0)
			acc += MeanRunLength(p.Spins())
		}
		return acc / reps
	}
	tolerant := meanAt(0.2, 1) // static regime: ~2 (initial coin flips)
	intolerant := meanAt(0.45, 2)
	if intolerant <= 2*tolerant {
		t.Fatalf("run lengths: tolerant %v, intolerant %v; want clear growth", tolerant, intolerant)
	}
}

func TestDeterministicReplayRing(t *testing.T) {
	a, err := NewRandom(100, 2, 0.45, 0.5, rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRandom(100, 2, 0.45, 0.5, rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	a.Run(0)
	b.Run(0)
	as, bs := a.Spins(), b.Spins()
	for i := range as {
		if as[i] != bs[i] {
			t.Fatal("same seed must give same fixed point")
		}
	}
}

func TestKawasakiRingConservesAndImproves(t *testing.T) {
	k, err := NewKawasaki(200, 2, 0.45, 0.5, rng.New(15))
	if err != nil {
		t.Fatal(err)
	}
	countPlus := func() int {
		c := 0
		for _, s := range k.Process().Spins() {
			if s == Plus {
				c++
			}
		}
		return c
	}
	before := countPlus()
	k.Run(5000, 500)
	if countPlus() != before {
		t.Fatal("Kawasaki ring must conserve type counts")
	}
	if k.Swaps() == 0 {
		t.Fatal("expected at least one successful swap on a random ring")
	}
}

func TestKawasakiRingDoneOnMonochromatic(t *testing.T) {
	// All-plus configuration via p = 1.
	k, err := NewKawasaki(50, 2, 0.45, 1.0, rng.New(17))
	if err != nil {
		t.Fatal(err)
	}
	if swapped, done := k.StepAttempt(); swapped || !done {
		t.Fatal("monochromatic ring must be done")
	}
}

// Property: RunLengths always partitions the ring.
func TestQuickRunLengthsPartition(t *testing.T) {
	f := func(raw []bool) bool {
		if len(raw) == 0 {
			return true
		}
		spins := make([]Spin, len(raw))
		for i, b := range raw {
			if b {
				spins[i] = Plus
			} else {
				spins[i] = Minus
			}
		}
		total := 0
		for _, r := range RunLengths(spins) {
			if r <= 0 {
				return false
			}
			total += r
		}
		return total == len(spins)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
