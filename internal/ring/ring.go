// Package ring implements the one-dimensional Schelling processes that
// the paper builds on (Section I.B): Glauber dynamics on a ring
// (Barmpalias, Elwes, Lewis-Pye) and the Kawasaki swap dynamic on a ring
// (Brandt, Immorlica, Kamath, Kleinberg). The 1-D results are the
// reference points for the 2-D theorems: polynomial run lengths at
// tau = 1/2 versus exponential run lengths for tau in (~0.35, 1/2).
//
// An agent's neighborhood is the arc of radius w around it (size
// N = 2w+1, including the agent); happiness and flip admissibility are
// defined exactly as in the 2-D model.
package ring

import (
	"errors"

	"gridseg/internal/rng"
	"gridseg/internal/theory"
)

// Spin mirrors the grid convention: +1 or -1.
type Spin int8

// The two agent types.
const (
	Plus  Spin = 1
	Minus Spin = -1
)

// Process is a Glauber segregation process on a ring of n agents.
type Process struct {
	spins     []Spin
	src       *rng.Source
	n         int
	w         int
	nbhd      int
	thresh    int
	plus      []int32 // +1 count in the radius-w arc around each site
	flippable []int32
	pos       []int32
	flips     int64
	time      float64
}

// NewRandom creates a ring process with i.i.d. Bernoulli(p) types.
func NewRandom(n, w int, tauTilde, p float64, src *rng.Source) (*Process, error) {
	if n < 3 {
		return nil, errors.New("ring: need at least 3 agents")
	}
	if w < 1 || 2*w+1 > n {
		return nil, errors.New("ring: invalid horizon")
	}
	if tauTilde < 0 || tauTilde > 1 {
		return nil, errors.New("ring: intolerance must be in [0, 1]")
	}
	if src == nil {
		return nil, errors.New("ring: nil source")
	}
	spins := make([]Spin, n)
	for i := range spins {
		if src.Bernoulli(p) {
			spins[i] = Plus
		} else {
			spins[i] = Minus
		}
	}
	return fromSpins(spins, w, tauTilde, src)
}

// New creates a ring process over the given spins (copied).
func New(spins []Spin, w int, tauTilde float64, src *rng.Source) (*Process, error) {
	cp := make([]Spin, len(spins))
	copy(cp, spins)
	return fromSpins(cp, w, tauTilde, src)
}

func fromSpins(spins []Spin, w int, tauTilde float64, src *rng.Source) (*Process, error) {
	n := len(spins)
	if n < 3 || w < 1 || 2*w+1 > n || src == nil {
		return nil, errors.New("ring: invalid parameters")
	}
	nbhd := 2*w + 1
	p := &Process{
		spins:  spins,
		src:    src,
		n:      n,
		w:      w,
		nbhd:   nbhd,
		thresh: theory.Threshold(tauTilde, nbhd),
		plus:   make([]int32, n),
		pos:    make([]int32, n),
	}
	for i := range p.pos {
		p.pos[i] = -1
	}
	// Sliding window initialization.
	var acc int32
	for d := -w; d <= w; d++ {
		if spins[wrap(d, n)] == Plus {
			acc++
		}
	}
	p.plus[0] = acc
	for i := 1; i < n; i++ {
		if spins[wrap(i-1-w, n)] == Plus {
			acc--
		}
		if spins[wrap(i+w, n)] == Plus {
			acc++
		}
		p.plus[i] = acc
	}
	for i := 0; i < n; i++ {
		p.refresh(i)
	}
	return p, nil
}

func wrap(a, n int) int {
	a %= n
	if a < 0 {
		a += n
	}
	return a
}

// Len returns the ring size.
func (p *Process) Len() int { return p.n }

// Spin returns the type of agent i.
func (p *Process) Spin(i int) Spin { return p.spins[wrap(i, p.n)] }

// Spins returns a copy of the configuration.
func (p *Process) Spins() []Spin {
	out := make([]Spin, p.n)
	copy(out, p.spins)
	return out
}

// Threshold returns the integer happiness threshold.
func (p *Process) Threshold() int { return p.thresh }

// Flips returns the number of effective flips performed.
func (p *Process) Flips() int64 { return p.flips }

// Time returns elapsed continuous time.
func (p *Process) Time() float64 { return p.time }

// SameCount returns the same-type count of agent i (including itself).
func (p *Process) SameCount(i int) int {
	if p.spins[i] == Plus {
		return int(p.plus[i])
	}
	return p.nbhd - int(p.plus[i])
}

// Happy reports whether agent i is happy.
func (p *Process) Happy(i int) bool { return p.SameCount(i) >= p.thresh }

// Fixated reports whether no admissible flip remains.
func (p *Process) Fixated() bool { return len(p.flippable) == 0 }

// FlippableCount returns the number of admissible flips.
func (p *Process) FlippableCount() int { return len(p.flippable) }

func (p *Process) refresh(i int) {
	same := p.SameCount(i)
	flippable := same < p.thresh && p.nbhd-same+1 >= p.thresh
	in := p.pos[i] >= 0
	switch {
	case flippable && !in:
		p.pos[i] = int32(len(p.flippable))
		p.flippable = append(p.flippable, int32(i))
	case !flippable && in:
		j := p.pos[i]
		last := p.flippable[len(p.flippable)-1]
		p.flippable[j] = last
		p.pos[last] = j
		p.flippable = p.flippable[:len(p.flippable)-1]
		p.pos[i] = -1
	}
}

// Step performs one effective flip; ok=false when fixated.
func (p *Process) Step() (site int, ok bool) {
	k := len(p.flippable)
	if k == 0 {
		return 0, false
	}
	p.time += p.src.ExpRate(float64(k))
	i := int(p.flippable[p.src.Intn(k)])
	newSpin := -p.spins[i]
	p.spins[i] = newSpin
	var delta int32 = 1
	if newSpin == Minus {
		delta = -1
	}
	for d := -p.w; d <= p.w; d++ {
		j := wrap(i+d, p.n)
		p.plus[j] += delta
		p.refresh(j)
	}
	p.flips++
	return i, true
}

// Run advances until fixation or maxFlips (<= 0 for unlimited).
func (p *Process) Run(maxFlips int64) (performed int64, fixated bool) {
	for maxFlips <= 0 || performed < maxFlips {
		if _, ok := p.Step(); !ok {
			return performed, true
		}
		performed++
	}
	return performed, p.Fixated()
}

// Phi returns the ring Lyapunov function, the sum of same-type counts.
func (p *Process) Phi() int64 {
	var phi int64
	for i := 0; i < p.n; i++ {
		phi += int64(p.SameCount(i))
	}
	return phi
}

// RunLengths returns the lengths of the maximal monochromatic arcs of
// the current configuration — the paper's 1-D "segregated regions".
// A monochromatic ring yields a single run of length n.
func (p *Process) RunLengths() []int {
	return RunLengths(p.spins)
}

// RunLengths computes maximal monochromatic run lengths of a circular
// configuration.
func RunLengths(spins []Spin) []int {
	n := len(spins)
	if n == 0 {
		return nil
	}
	// Find a boundary to anchor the circular scan.
	start := -1
	for i := 0; i < n; i++ {
		if spins[i] != spins[wrap(i-1, n)] {
			start = i
			break
		}
	}
	if start == -1 {
		return []int{n} // monochromatic
	}
	var runs []int
	cur := 1
	for k := 1; k < n; k++ {
		i := wrap(start+k, n)
		if spins[i] == spins[wrap(i-1, n)] {
			cur++
		} else {
			runs = append(runs, cur)
			cur = 1
		}
	}
	runs = append(runs, cur)
	return runs
}

// MeanRunLength returns the average monochromatic run length.
func MeanRunLength(spins []Spin) float64 {
	runs := RunLengths(spins)
	if len(runs) == 0 {
		return 0
	}
	total := 0
	for _, r := range runs {
		total += r
	}
	return float64(total) / float64(len(runs))
}

// LongestRun returns the maximum monochromatic run length.
func LongestRun(spins []Spin) int {
	best := 0
	for _, r := range RunLengths(spins) {
		if r > best {
			best = r
		}
	}
	return best
}

// Kawasaki is the 1-D closed-system swap baseline of Brandt et al.:
// unhappy agents of opposite types swap when the swap makes both happy.
type Kawasaki struct {
	p            *Process
	unhappyPlus  []int32
	unhappyMinus []int32
	posPlus      []int32
	posMinus     []int32
	swaps        int64
	attempts     int64
}

// NewKawasaki builds the swap process over Bernoulli(p) initial types.
func NewKawasaki(n, w int, tauTilde, prob float64, src *rng.Source) (*Kawasaki, error) {
	p, err := NewRandom(n, w, tauTilde, prob, src)
	if err != nil {
		return nil, err
	}
	k := &Kawasaki{
		p:        p,
		posPlus:  make([]int32, n),
		posMinus: make([]int32, n),
	}
	for i := range k.posPlus {
		k.posPlus[i] = -1
		k.posMinus[i] = -1
	}
	for i := 0; i < n; i++ {
		k.refreshSets(i)
	}
	return k, nil
}

// Process exposes the underlying ring state.
func (k *Kawasaki) Process() *Process { return k.p }

// Swaps returns the number of successful swaps.
func (k *Kawasaki) Swaps() int64 { return k.swaps }

func (k *Kawasaki) refreshSets(i int) {
	unhappy := !k.p.Happy(i)
	wantPlus := unhappy && k.p.spins[i] == Plus
	wantMinus := unhappy && k.p.spins[i] == Minus
	setMembership(&k.unhappyPlus, k.posPlus, i, wantPlus)
	setMembership(&k.unhappyMinus, k.posMinus, i, wantMinus)
}

func setMembership(set *[]int32, pos []int32, i int, want bool) {
	in := pos[i] >= 0
	switch {
	case want && !in:
		pos[i] = int32(len(*set))
		*set = append(*set, int32(i))
	case !want && in:
		j := pos[i]
		last := (*set)[len(*set)-1]
		(*set)[j] = last
		pos[last] = j
		*set = (*set)[:len(*set)-1]
		pos[i] = -1
	}
}

// forceFlip flips agent i and refreshes counts and sets.
func (k *Kawasaki) forceFlip(i int) {
	newSpin := -k.p.spins[i]
	k.p.spins[i] = newSpin
	var delta int32 = 1
	if newSpin == Minus {
		delta = -1
	}
	for d := -k.p.w; d <= k.p.w; d++ {
		j := wrap(i+d, k.p.n)
		k.p.plus[j] += delta
		k.p.refresh(j)
		k.refreshSets(j)
	}
}

// StepAttempt samples one unhappy agent of each type and swaps them iff
// both become happy; done=true when no unhappy pair exists.
func (k *Kawasaki) StepAttempt() (swapped, done bool) {
	if len(k.unhappyPlus) == 0 || len(k.unhappyMinus) == 0 {
		return false, true
	}
	k.attempts++
	u := int(k.unhappyPlus[k.p.src.Intn(len(k.unhappyPlus))])
	v := int(k.unhappyMinus[k.p.src.Intn(len(k.unhappyMinus))])
	k.forceFlip(u)
	k.forceFlip(v)
	if k.p.Happy(u) && k.p.Happy(v) {
		k.swaps++
		return true, false
	}
	k.forceFlip(v)
	k.forceFlip(u)
	return false, false
}

// Run performs attempts until done, budget exhaustion, or a failure
// streak; mirrors the 2-D Kawasaki baseline.
func (k *Kawasaki) Run(maxAttempts, failStreak int64) (performed int64, done bool) {
	var streak int64
	for a := int64(0); a < maxAttempts; a++ {
		swapped, noPairs := k.StepAttempt()
		if noPairs {
			return performed, true
		}
		if swapped {
			performed++
			streak = 0
		} else {
			streak++
			if failStreak > 0 && streak >= failStreak {
				return performed, false
			}
		}
	}
	return performed, false
}
