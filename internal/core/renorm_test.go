package core

import (
	"math"
	"testing"

	"gridseg/internal/geom"
	"gridseg/internal/grid"
	"gridseg/internal/rng"
)

func TestRenormalizeValidation(t *testing.T) {
	l := grid.Random(24, 0.5, rng.New(1))
	if _, err := Renormalize(l, 5, 2, 0.1); err == nil {
		t.Fatal("want error: 5 does not divide 24")
	}
	if _, err := Renormalize(l, 6, 0, 0.1); err == nil {
		t.Fatal("want error: zero horizon")
	}
	if _, err := Renormalize(l, 6, 2, 0.7); err == nil {
		t.Fatal("want error: eps out of range")
	}
}

// A perfectly balanced configuration (checkerboard) has every window
// intersection within 1 of half, hence every block is good for any
// bound above 1.
func TestRenormalizeCheckerboardAllGood(t *testing.T) {
	n := 24
	l := grid.New(n, grid.Minus)
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			if (x+y)%2 == 0 {
				l.Set(geom.Point{X: x, Y: y}, grid.Plus)
			}
		}
	}
	bf, err := Renormalize(l, 6, 2, 0.25) // bound = 25^0.75 ~ 11.2
	if err != nil {
		t.Fatal(err)
	}
	if bf.CountGood() != bf.Side*bf.Side {
		t.Fatalf("checkerboard: %d/%d good", bf.CountGood(), bf.Side*bf.Side)
	}
	if bf.GoodFraction() != 1 || bf.BadRatio() != 0 {
		t.Fatal("fractions wrong for all-good field")
	}
}

// A monochromatic lattice maximally violates the balance criterion:
// every block is bad.
func TestRenormalizeMonochromaticAllBad(t *testing.T) {
	l := grid.New(24, grid.Plus)
	bf, err := Renormalize(l, 6, 2, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if bf.CountGood() != 0 {
		t.Fatalf("monochromatic lattice: %d good blocks, want 0", bf.CountGood())
	}
	if !math.IsInf(bf.BadRatio(), 1) {
		t.Fatal("BadRatio must be +Inf with no good blocks")
	}
	stats := bf.BadClusters()
	if stats.Count != 1 {
		t.Fatalf("all-bad field must form one torus-connected cluster, got %d", stats.Count)
	}
	if stats.MaxSize != bf.Side*bf.Side {
		t.Fatalf("cluster size = %d, want %d", stats.MaxSize, bf.Side*bf.Side)
	}
}

// A random balanced lattice at moderate w should be mostly good: the
// Lemma 11 probability bound says bad blocks are exponentially rare
// in N^{2 eps}.
func TestRenormalizeRandomMostlyGood(t *testing.T) {
	l := grid.Random(60, 0.5, rng.New(3))
	bf, err := Renormalize(l, 10, 2, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if bf.GoodFraction() < 0.5 {
		t.Fatalf("good fraction = %v, expected mostly good blocks", bf.GoodFraction())
	}
}

func TestSetGoodAndAccessorsWrap(t *testing.T) {
	bf := NewSyntheticField(5, 4, func(x, y int) bool { return true })
	bf.SetGood(0, 0, false)
	if bf.Good(5, 5) { // wraps to (0,0)
		t.Fatal("Good must wrap coordinates")
	}
	bf.SetGood(-1, -1, false) // wraps to (4,4)
	if bf.Good(4, 4) {
		t.Fatal("SetGood must wrap coordinates")
	}
	if bf.CountGood() != 23 {
		t.Fatalf("CountGood = %d, want 23", bf.CountGood())
	}
}

func TestBadClustersStats(t *testing.T) {
	// Two separate bad clusters: a 2x2 block and an isolated block.
	bf := NewSyntheticField(10, 1, func(x, y int) bool { return true })
	bf.SetGood(1, 1, false)
	bf.SetGood(1, 2, false)
	bf.SetGood(2, 1, false)
	bf.SetGood(2, 2, false)
	bf.SetGood(7, 7, false)
	stats := bf.BadClusters()
	if stats.Count != 2 {
		t.Fatalf("cluster count = %d, want 2", stats.Count)
	}
	if stats.MaxSize != 4 {
		t.Fatalf("max size = %d, want 4", stats.MaxSize)
	}
	if stats.MaxRadius != 2 { // l1 radius from first-found corner
		t.Fatalf("max radius = %d, want 2", stats.MaxRadius)
	}
}

func TestBadClustersDiagonalTouchMerges(t *testing.T) {
	// 8-adjacency merges diagonal neighbors.
	bf := NewSyntheticField(8, 1, func(x, y int) bool { return true })
	bf.SetGood(2, 2, false)
	bf.SetGood(3, 3, false)
	stats := bf.BadClusters()
	if stats.Count != 1 || stats.MaxSize != 2 {
		t.Fatalf("diagonal bad blocks must merge: %+v", stats)
	}
}

func TestHasSurroundingCircuitAllGood(t *testing.T) {
	bf := NewSyntheticField(21, 1, func(x, y int) bool { return true })
	c := geom.Point{X: 10, Y: 10}
	if !bf.HasSurroundingCircuit(c, 3, 7) {
		t.Fatal("all-good field must have a surrounding circuit")
	}
}

func TestHasSurroundingCircuitBlockedByBadCrossing(t *testing.T) {
	bf := NewSyntheticField(21, 1, func(x, y int) bool { return true })
	c := geom.Point{X: 10, Y: 10}
	// A straight bad wall from the inner ring to the outer ring.
	for d := 3; d <= 7; d++ {
		bf.SetGood(10+d, 10, false)
	}
	if bf.HasSurroundingCircuit(c, 3, 7) {
		t.Fatal("bad radial wall must destroy the circuit")
	}
}

func TestHasSurroundingCircuitDiagonalBadWall(t *testing.T) {
	// Bad blocks touching only diagonally still block the 4-connected
	// good circuit (8-adjacency duality).
	bf := NewSyntheticField(21, 1, func(x, y int) bool { return true })
	c := geom.Point{X: 10, Y: 10}
	for i := 0; i <= 4; i++ {
		bf.SetGood(10+3+i, 10-i, false)
	}
	if bf.HasSurroundingCircuit(c, 3, 7) {
		t.Fatal("diagonal bad wall must destroy the circuit")
	}
}

func TestHasSurroundingCircuitParamValidation(t *testing.T) {
	bf := NewSyntheticField(9, 1, func(x, y int) bool { return true })
	c := geom.Point{X: 4, Y: 4}
	if bf.HasSurroundingCircuit(c, 0, 3) {
		t.Fatal("inner < 1 must be rejected")
	}
	if bf.HasSurroundingCircuit(c, 3, 3) {
		t.Fatal("outer <= inner must be rejected")
	}
	if bf.HasSurroundingCircuit(c, 2, 5) {
		t.Fatal("annulus wrapping the torus must be rejected")
	}
}

func TestCircuitLengthAllGood(t *testing.T) {
	bf := NewSyntheticField(31, 1, func(x, y int) bool { return true })
	c := geom.Point{X: 15, Y: 15}
	length, ok := bf.CircuitLength(c, 3, 8)
	if !ok {
		t.Fatal("circuit must exist in all-good field")
	}
	// The shortest surrounding circuit at inner radius 3 is the ring at
	// Chebyshev radius 3 of length 8*3 = 24; allow the seam-estimate to
	// be within a couple of blocks.
	if length < 20 || length > 30 {
		t.Fatalf("circuit length = %d, want ~24", length)
	}
}

func TestCircuitLengthGrowsWithRadius(t *testing.T) {
	bf := NewSyntheticField(61, 1, func(x, y int) bool { return true })
	c := geom.Point{X: 30, Y: 30}
	l1, ok1 := bf.CircuitLength(c, 5, 10)
	l2, ok2 := bf.CircuitLength(c, 15, 20)
	if !ok1 || !ok2 {
		t.Fatal("circuits must exist")
	}
	if l2 <= l1 {
		t.Fatalf("circuit length must grow with radius: %d vs %d", l1, l2)
	}
}

func TestCircuitLengthAbsentWhenBlocked(t *testing.T) {
	bf := NewSyntheticField(21, 1, func(x, y int) bool { return true })
	c := geom.Point{X: 10, Y: 10}
	for d := 3; d <= 7; d++ {
		bf.SetGood(10-d, 10, false) // wall on the negative-x side
	}
	if _, ok := bf.CircuitLength(c, 3, 7); ok {
		t.Fatal("blocked annulus must have no circuit")
	}
}

func TestPathToRing(t *testing.T) {
	bf := NewSyntheticField(21, 1, func(x, y int) bool { return true })
	c := geom.Point{X: 10, Y: 10}
	length, ok := bf.PathToRing(c, 5)
	if !ok {
		t.Fatal("path must exist in all-good field")
	}
	if length < 5 || length > 7 {
		t.Fatalf("path length = %d, want ~5-6", length)
	}
	// Surround the center with bad blocks: no path.
	for _, d := range [][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}, {1, 1}, {1, -1}, {-1, 1}, {-1, -1}} {
		bf.SetGood(10+d[0], 10+d[1], false)
	}
	bf.SetGood(10, 10, false)
	if _, ok := bf.PathToRing(c, 5); ok {
		t.Fatal("enclosed center must have no path to the ring")
	}
}

func TestFindChemicalPath(t *testing.T) {
	bf := NewSyntheticField(31, 1, func(x, y int) bool { return true })
	c := geom.Point{X: 15, Y: 15}
	cp := bf.FindChemicalPath(c, 4, 9)
	if !cp.OK {
		t.Fatal("chemical path must exist in all-good field")
	}
	if cp.TotalLen != cp.CircuitLen+cp.PathLen {
		t.Fatal("total length must be the sum of parts")
	}
	// Destroying the annulus kills it.
	for d := 4; d <= 9; d++ {
		bf.SetGood(15+d, 15, false)
	}
	if cp2 := bf.FindChemicalPath(c, 4, 9); cp2.OK {
		t.Fatal("blocked annulus must have no chemical path")
	}
}

// On a supercritical synthetic field (each block good with high
// probability), circuits exist w.h.p. and their length stays
// proportional to the radius — the Lemma 13 shape.
func TestChemicalPathOnSupercriticalField(t *testing.T) {
	src := rng.New(11)
	found := 0
	var lengths []int
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		bf := NewSyntheticField(41, 1, func(x, y int) bool { return src.Bernoulli(0.95) })
		cp := bf.FindChemicalPath(geom.Point{X: 20, Y: 20}, 5, 15)
		if cp.OK {
			found++
			lengths = append(lengths, cp.CircuitLen)
		}
	}
	if found < trials*3/4 {
		t.Fatalf("chemical paths found in only %d/%d supercritical trials", found, trials)
	}
	for _, cl := range lengths {
		// Perimeter at radius 5 is 40; detours allowed but bounded.
		if cl < 30 || cl > 160 {
			t.Fatalf("circuit length %d wildly disproportionate to radius", cl)
		}
	}
}
