package core

import (
	"errors"

	"gridseg/internal/dynamics"
	"gridseg/internal/geom"
	"gridseg/internal/grid"
)

// SpreadResult reports the outcome of a T(rho) observation (Eq. 9):
// T(rho) = inf { t : exists v in N_rho, u+ would be unhappy at the
// location of v }. Lemma 7 upper-bounds how fast this front can move
// via first-passage percolation; SpreadTime measures it directly on the
// running process.
type SpreadResult struct {
	Tripped bool    // the probe event occurred
	Time    float64 // continuous time at the trip (or at the budget end)
	Flips   int64   // flips performed while waiting
}

// SpreadTime advances the process until a hypothetical agent of the
// given spin placed anywhere in N_rho(center) would be unhappy, or
// until maxFlips elapse (maxFlips <= 0 runs to fixation). The check
// runs against the live process state after every flip that lands
// within Chebyshev distance rho + w of the center (flips farther away
// cannot change the probe predicate).
func SpreadTime(proc *dynamics.Process, center geom.Point, rho int, spin grid.Spin, maxFlips int64) (SpreadResult, error) {
	if proc == nil {
		return SpreadResult{}, errors.New("core: nil process")
	}
	lat := proc.Lattice()
	if 2*rho+1 > lat.N() {
		return SpreadResult{}, errors.New("core: probe region larger than torus")
	}
	tor := lat.Torus()
	probe := func() bool {
		tripped := false
		tor.Square(center, rho, func(p geom.Point) {
			if tripped {
				return
			}
			if !proc.HappyAs(tor.Index(p), spin) {
				tripped = true
			}
		})
		return tripped
	}
	start := proc.Time()
	if probe() {
		return SpreadResult{Tripped: true, Time: 0}, nil
	}
	var flips int64
	reach := rho + proc.Horizon()
	for maxFlips <= 0 || flips < maxFlips {
		site, ok := proc.Step()
		if !ok {
			return SpreadResult{Tripped: false, Time: proc.Time() - start, Flips: flips}, nil
		}
		flips++
		if tor.Cheb(center, tor.At(site)) <= reach && probe() {
			return SpreadResult{Tripped: true, Time: proc.Time() - start, Flips: flips}, nil
		}
	}
	return SpreadResult{Tripped: false, Time: proc.Time() - start, Flips: flips}, nil
}
