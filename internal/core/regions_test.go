package core

import (
	"math"
	"testing"

	"gridseg/internal/dynamics"
	"gridseg/internal/geom"
	"gridseg/internal/grid"
	"gridseg/internal/rng"
)

func defaultSpec(w int, tau float64) Spec {
	return Spec{W: w, EpsPrime: 0.3, Eps: 0.1, TauTilde: tau}
}

func TestSpecValidate(t *testing.T) {
	good := defaultSpec(3, 0.45)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Spec{
		{W: 0, EpsPrime: 0.3, Eps: 0.1, TauTilde: 0.45},
		{W: 3, EpsPrime: 0, Eps: 0.1, TauTilde: 0.45},
		{W: 3, EpsPrime: 1.5, Eps: 0.1, TauTilde: 0.45},
		{W: 3, EpsPrime: 0.3, Eps: 0, TauTilde: 0.45},
		{W: 3, EpsPrime: 0.3, Eps: 0.6, TauTilde: 0.45},
		{W: 3, EpsPrime: 0.3, Eps: 0.1, TauTilde: 0},
		{W: 3, EpsPrime: 0.3, Eps: 0.1, TauTilde: 1},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: want validation error", i)
		}
	}
}

func TestSpecDerivedQuantities(t *testing.T) {
	s := defaultSpec(10, 0.42)
	if s.N() != 441 {
		t.Fatalf("N = %d", s.N())
	}
	if s.RadicalRadius() != 13 { // round(1.3*10)
		t.Fatalf("radical radius = %d, want 13", s.RadicalRadius())
	}
	if s.UnhappyRadius() != 3 { // round(0.3*10)
		t.Fatalf("unhappy radius = %d, want 3", s.UnhappyRadius())
	}
	if b := s.RadicalMinorityBound(); b <= 0 || b >= float64(s.N())*1.69*0.42+1 {
		t.Fatalf("radical minority bound = %v implausible", b)
	}
	if s.UnhappyMinorityBound() < 0 {
		t.Fatal("unhappy bound negative")
	}
	if s.Threshold() != 186 {
		t.Fatalf("threshold = %d, want 186", s.Threshold())
	}
}

func TestIsRadicalRegionExtremes(t *testing.T) {
	s := defaultSpec(2, 0.45)
	// All-plus lattice: zero minus agents => radical for minority minus.
	lp := grid.New(31, grid.Plus)
	pre := grid.NewPrefix(lp)
	if !IsRadicalRegion(pre, geom.Point{X: 15, Y: 15}, s, grid.Minus) {
		t.Fatal("all-plus region must be radical for minus minority")
	}
	// All-minus lattice: every agent is minus => not radical for minus.
	lm := grid.New(31, grid.Minus)
	prem := grid.NewPrefix(lm)
	if IsRadicalRegion(prem, geom.Point{X: 15, Y: 15}, s, grid.Minus) {
		t.Fatal("all-minus region must not be radical for minus minority")
	}
	// Symmetric check for plus minority.
	if !IsRadicalRegion(prem, geom.Point{X: 15, Y: 15}, s, grid.Plus) {
		t.Fatal("all-minus region must be radical for plus minority")
	}
}

func TestIsRadicalRegionThresholdBoundary(t *testing.T) {
	s := defaultSpec(2, 0.45)
	radius := s.RadicalRadius() // round(1.3*2) = 3, side 7, 49 agents
	bound := s.RadicalMinorityBound()
	l := grid.New(31, grid.Plus)
	c := geom.Point{X: 15, Y: 15}
	// Insert exactly floor(bound) minus agents: still radical (strict <)
	// unless bound is integral; then insert one more to break it.
	k := int(math.Floor(bound))
	placed := 0
	l.Torus().Square(c, radius, func(p geom.Point) {
		if placed < k {
			l.Set(p, grid.Minus)
			placed++
		}
	})
	pre := grid.NewPrefix(l)
	want := float64(k) < bound
	if got := IsRadicalRegion(pre, c, s, grid.Minus); got != want {
		t.Fatalf("radical with %d minus (bound %v) = %v, want %v", k, bound, got, want)
	}
}

func TestFindRadicalRegionsOnRandomLattice(t *testing.T) {
	// On a balanced random lattice with small w, radical regions for
	// either minority should be rare but the scan must agree with the
	// pointwise predicate.
	l := grid.Random(40, 0.5, rng.New(5))
	s := defaultSpec(2, 0.45)
	found := FindRadicalRegions(l, s, grid.Minus, 1)
	pre := grid.NewPrefix(l)
	for _, c := range found {
		if !IsRadicalRegion(pre, c, s, grid.Minus) {
			t.Fatalf("center %v reported radical but predicate disagrees", c)
		}
	}
	// Stride subsampling returns a subset.
	strided := FindRadicalRegions(l, s, grid.Minus, 2)
	if len(strided) > len(found) {
		t.Fatal("strided scan found more regions than exhaustive scan")
	}
}

func TestCountUnhappyMinority(t *testing.T) {
	// Single minus dissenter at tau=1/2, w=1: exactly one unhappy minus.
	l := grid.New(9, grid.Plus)
	c := geom.Point{X: 4, Y: 4}
	l.Set(c, grid.Minus)
	got := CountUnhappyMinority(l, c, 2, 1, 5, grid.Minus)
	if got != 1 {
		t.Fatalf("unhappy minority count = %d, want 1", got)
	}
	// The happy plus agents are not counted.
	if got := CountUnhappyMinority(l, c, 2, 1, 5, grid.Plus); got != 0 {
		t.Fatalf("unhappy plus count = %d, want 0", got)
	}
}

// An all-plus window around an isolated cluster of minus agents: the
// cascade must flip the minus agents and leave a monochromatic center.
func TestExpandableCascadeFlipsIsolatedMinority(t *testing.T) {
	s := defaultSpec(2, 0.45) // thresh = ceil(0.45*25) = 12
	l := grid.New(41, grid.Plus)
	c := geom.Point{X: 20, Y: 20}
	// Sprinkle a few minus agents near the center: each has same-count
	// well below 12 so all are unhappy and flip.
	for _, off := range [][2]int{{0, 0}, {1, 0}, {-1, 1}, {0, -2}} {
		l.Set(l.Torus().Add(c, off[0], off[1]), grid.Minus)
	}
	res, err := Expandable(l, c, s, grid.Minus)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Expandable {
		t.Fatalf("cascade must succeed: %+v", res)
	}
	if res.Flips != 4 {
		t.Fatalf("flips = %d, want 4", res.Flips)
	}
	if !res.WithinBudget {
		t.Fatalf("4 flips must be within budget %d", res.Budget)
	}
	// The input lattice must not be modified.
	if l.Spin(c) != grid.Minus {
		t.Fatal("Expandable mutated the input lattice")
	}
}

// A majority-minus window: the center block cannot become plus.
func TestExpandableFailsInHostileSea(t *testing.T) {
	s := defaultSpec(2, 0.45)
	l := grid.New(41, grid.Minus)
	res, err := Expandable(l, geom.Point{X: 20, Y: 20}, s, grid.Minus)
	if err != nil {
		t.Fatal(err)
	}
	if res.Expandable {
		t.Fatal("all-minus sea must not be expandable toward plus")
	}
	if res.Flips != 0 {
		t.Fatalf("no flips expected, got %d", res.Flips)
	}
}

func TestExpandableWindowTooLarge(t *testing.T) {
	s := defaultSpec(3, 0.45)
	l := grid.New(9, grid.Plus) // window side 2*(4+6)+1 = 21 > 9
	if _, err := Expandable(l, geom.Point{X: 4, Y: 4}, s, grid.Minus); err == nil {
		t.Fatal("want window-size error")
	}
}

func TestExpandableInvalidSpec(t *testing.T) {
	l := grid.New(41, grid.Plus)
	if _, err := Expandable(l, geom.Point{}, Spec{}, grid.Minus); err == nil {
		t.Fatal("want validation error")
	}
}

func TestFirewallGeometry(t *testing.T) {
	f := Firewall{Center: geom.Point{X: 20, Y: 20}, R: 10, W: 2}
	if math.Abs(f.InnerRadius()-(10-2*math.Sqrt2)) > 1e-12 {
		t.Fatalf("inner radius = %v", f.InnerRadius())
	}
	tor := geom.NewTorus(41)
	sites := f.Sites(tor)
	if len(sites) == 0 {
		t.Fatal("annulus must contain sites")
	}
	for _, p := range sites {
		d := tor.Euclid(f.Center, p)
		if d < f.InnerRadius()-1e-9 || d > f.R+1e-9 {
			t.Fatalf("site %v at distance %v outside annulus", p, d)
		}
	}
	interior := f.InteriorSites(tor)
	for _, p := range interior {
		if tor.Euclid(f.Center, p) >= f.InnerRadius() {
			t.Fatalf("interior site %v not strictly inside", p)
		}
	}
}

func TestFirewallMonochromatic(t *testing.T) {
	l := grid.New(41, grid.Minus)
	f := Firewall{Center: geom.Point{X: 20, Y: 20}, R: 10, W: 2}
	for _, p := range f.Sites(l.Torus()) {
		l.Set(p, grid.Plus)
	}
	spin, ok := f.IsMonochromatic(l)
	if !ok || spin != grid.Plus {
		t.Fatalf("firewall detection failed: %v %v", spin, ok)
	}
	// Poke a hole.
	l.Set(f.Sites(l.Torus())[0], grid.Minus)
	if _, ok := f.IsMonochromatic(l); ok {
		t.Fatal("holed annulus must not be monochromatic")
	}
}

func TestFindFirewall(t *testing.T) {
	// Random background so smaller annuli are not accidentally
	// monochromatic; insert a plus annulus at R=9.
	l := grid.Random(41, 0.5, rng.New(42))
	u := geom.Point{X: 20, Y: 20}
	f := Firewall{Center: u, R: 9, W: 2}
	for _, p := range f.Sites(l.Torus()) {
		l.Set(p, grid.Plus)
	}
	found, ok := FindFirewall(l, u, 2, 4, 15)
	if !ok || found.R != 9 {
		t.Fatalf("FindFirewall = %+v, %v; want R=9", found, ok)
	}
	if _, ok := FindFirewall(grid.Random(41, 0.5, rng.New(1)), u, 2, 4, 15); ok {
		t.Fatal("random lattice should not contain a perfect firewall")
	}
}

// Lemma 9 behaviour: once a sufficiently wide monochromatic annulus
// exists, adversarial flips outside it never disturb the interior.
// Lemma 9 requires "a sufficiently large constant w"; at w=2 the worst
// annulus site (the discrete circle's pole tip) keeps same-count 11 of
// 25, so the invariance holds for thresholds up to 11 (tau = 0.40 gives
// threshold 10) but provably fails at tau = 0.45 (threshold 12) — that
// finite-size erosion is real model behaviour, not a bug.
func TestFirewallProtectsInterior(t *testing.T) {
	n := 41
	w := 2
	tau := 0.40
	l := grid.Random(n, 0.5, rng.New(7))
	u := geom.Point{X: 20, Y: 20}
	f := Firewall{Center: u, R: 12, W: w}
	tor := l.Torus()
	// Build the firewall and a monochromatic interior.
	for _, p := range f.Sites(tor) {
		l.Set(p, grid.Plus)
	}
	for _, p := range f.InteriorSites(tor) {
		l.Set(p, grid.Plus)
	}
	interior := f.InteriorSites(tor)
	annulus := f.Sites(tor)
	proc, err := dynamics.New(l, w, tau, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	// Adversary: force every exterior site to minus, then run the
	// process to fixation.
	protected := map[geom.Point]bool{}
	for _, p := range append(append([]geom.Point{}, interior...), annulus...) {
		protected[p] = true
	}
	for i := 0; i < l.Sites(); i++ {
		p := tor.At(i)
		if !protected[p] && l.SpinAt(i) == grid.Plus {
			proc.ForceFlip(i)
		}
	}
	proc.Run(0)
	for _, p := range annulus {
		if l.Spin(p) != grid.Plus {
			t.Fatalf("firewall site %v was breached", p)
		}
	}
	for _, p := range interior {
		if l.Spin(p) != grid.Plus {
			t.Fatalf("interior site %v was disturbed", p)
		}
	}
}

func TestIsRegionOfExpansion(t *testing.T) {
	w := 2
	thresh := 12 // tau = 0.48 of 25
	// All-minus sea: placing a + block of radius 1 gives a boundary
	// minus agent at most 9 plus agents in its 25-neighborhood...
	// same-count >= 16 >= 12, so it stays happy: NOT a region of
	// expansion.
	sea := grid.New(41, grid.Minus)
	if IsRegionOfExpansion(sea, geom.Point{X: 20, Y: 20}, 3, w, thresh, grid.Plus, 1) {
		t.Fatal("all-minus sea must not be a region of expansion at tau=0.48")
	}
	// A balanced-but-slightly-plus-rich environment: minus agents near
	// the block already see ~half plus; the block pushes them below
	// threshold. Construct rows alternating with extra plus.
	l := grid.New(41, grid.Minus)
	for y := 0; y < 41; y++ {
		for x := 0; x < 41; x++ {
			if (x+y)%2 == 0 || x%3 == 0 {
				l.Set(geom.Point{X: x, Y: y}, grid.Plus)
			}
		}
	}
	// With thresh = 13 (tau = 0.52 of 25): a minus agent adjacent to
	// the + block needs >= 13 minus in 25; its environment has ~1/3
	// minus so it is already unhappy; certainly unhappy with the block.
	if !IsRegionOfExpansion(l, geom.Point{X: 20, Y: 20}, 3, w, 13, grid.Plus, 1) {
		t.Fatal("plus-rich environment must be a region of expansion")
	}
}

// The substituted-block happiness computation must agree with a direct
// simulation of placing the block.
func TestRegionOfExpansionMatchesDirectSubstitution(t *testing.T) {
	w := 2
	thresh := 12
	l := grid.Random(41, 0.5, rng.New(9))
	c := geom.Point{X: 20, Y: 20}
	tor := l.Torus()
	blockR := w / 2
	// Direct: place the block, check boundary agents, restore.
	direct := func(bc geom.Point) bool {
		saved := map[geom.Point]grid.Spin{}
		tor.Square(bc, blockR, func(p geom.Point) {
			saved[p] = l.Spin(p)
			l.Set(p, grid.Plus)
		})
		ok := true
		pre := grid.NewPrefix(l)
		nbhd := geom.SquareSize(w)
		tor.SquarePerimeter(bc, blockR+1, func(v geom.Point) {
			if l.Spin(v) != grid.Minus {
				return
			}
			plus, _ := pre.PlusInSquare(v, w)
			if nbhd-plus >= thresh { // minus agent still happy
				ok = false
			}
		})
		for p, s := range saved {
			l.Set(p, s)
		}
		return ok
	}
	all := true
	for dy := -2; dy <= 2; dy++ {
		for dx := -2; dx <= 2; dx++ {
			if !direct(tor.Add(c, dx, dy)) {
				all = false
			}
		}
	}
	got := IsRegionOfExpansion(l, c, 2, w, thresh, grid.Plus, 1)
	if got != all {
		t.Fatalf("IsRegionOfExpansion = %v, direct substitution = %v", got, all)
	}
}
