package core

import (
	"gridseg/internal/geom"
	"gridseg/internal/grid"
	"gridseg/internal/theory"
)

// Section IV.C extends all results to 1/2 < tau < 1 - tau2 by replacing
// "unhappy" with "super-unhappy" (an unhappy agent whose flip would make
// it happy) and radical regions with super-radical regions defined
// through tau-bar = 1 - tau + 2/N.

// SuperUnhappy reports whether the agent at p is super-unhappy in the
// current configuration: unhappy, and flipping would make it happy.
// For tau < 1/2 this coincides with plain unhappiness.
func SuperUnhappy(l *grid.Lattice, pre *grid.Prefix, p geom.Point, w, thresh int) bool {
	nbhd := geom.SquareSize(w)
	// Callers validate the horizon (2w+1 <= n), so the query cannot
	// fail.
	plus, _ := pre.PlusInSquare(p, w)
	same := plus
	if l.Spin(p) == grid.Minus {
		same = nbhd - plus
	}
	return same < thresh && nbhd-same+1 >= thresh
}

// SuperRadicalMinorityBound returns the strict upper bound on the
// minority count of a super-radical region:
// tau-bar' * (1+eps')^2 * N, with tau-bar = 1 - tau + 2/N and
// tau-bar' = (1 - 1/(tau-bar * N^{1/2-eps})) * tau-bar (Section IV.C).
func (s Spec) SuperRadicalMinorityBound() float64 {
	n := s.N()
	tauBar := theory.TauBar(s.TauTilde, n)
	tauBarPrime := theory.TauHat(tauBar, n, s.Eps)
	scale := (1 + s.EpsPrime) * (1 + s.EpsPrime)
	return tauBarPrime * scale * float64(n)
}

// IsSuperRadicalRegion reports whether the neighborhood of radius
// (1+eps')w centered at c is a super-radical region for the given
// minority spin: strictly fewer than the Section IV.C bound of minority
// agents. Meaningful for tau > 1/2; for tau < 1/2 use IsRadicalRegion.
func IsSuperRadicalRegion(pre *grid.Prefix, c geom.Point, s Spec, minority grid.Spin) bool {
	radius := s.RadicalRadius()
	if 2*radius+1 > pre.N() {
		return false
	}
	side := 2*radius + 1
	plus := pre.PlusInRect(c.X-radius, c.Y-radius, side, side)
	count := plus
	if minority == grid.Minus {
		count = side*side - plus
	}
	return float64(count) < s.SuperRadicalMinorityBound()
}

// CountSuperUnhappyMinority counts the super-unhappy agents of the given
// minority spin inside N_radius(c) — the Section IV.C analogue of
// CountUnhappyMinority. For tau < 1/2 the two counts agree.
func CountSuperUnhappyMinority(l *grid.Lattice, c geom.Point, radius, w, thresh int, minority grid.Spin) int {
	pre := grid.NewPrefix(l)
	count := 0
	l.Torus().Square(c, radius, func(p geom.Point) {
		if l.Spin(p) != minority {
			return
		}
		if SuperUnhappy(l, pre, p, w, thresh) {
			count++
		}
	})
	return count
}
