package core

import (
	"testing"

	"gridseg/internal/geom"
	"gridseg/internal/grid"
	"gridseg/internal/rng"
	"gridseg/internal/theory"
)

// Below tau = 1/2, super-unhappiness coincides with unhappiness; above
// 1/2 it is strictly stronger.
func TestSuperUnhappyCoincidesBelowHalf(t *testing.T) {
	l := grid.Random(20, 0.5, rng.New(61))
	pre := grid.NewPrefix(l)
	w := 2
	nbhd := geom.SquareSize(w)
	thresh := theory.Threshold(0.45, nbhd) // 12 < 13 = ceil(N/2)
	for i := 0; i < l.Sites(); i++ {
		p := l.Torus().At(i)
		plus, _ := pre.PlusInSquare(p, w)
		same := plus
		if l.Spin(p) == grid.Minus {
			same = nbhd - plus
		}
		unhappy := same < thresh
		if got := SuperUnhappy(l, pre, p, w, thresh); got != unhappy {
			t.Fatalf("site %v: super-unhappy %v, unhappy %v (tau < 1/2 must agree)", p, got, unhappy)
		}
	}
}

func TestSuperUnhappyStrictlyStrongerAboveHalf(t *testing.T) {
	l := grid.Random(20, 0.5, rng.New(62))
	pre := grid.NewPrefix(l)
	w := 2
	nbhd := geom.SquareSize(w)
	thresh := theory.Threshold(0.8, nbhd) // 20 of 25
	unhappyCount, superCount := 0, 0
	for i := 0; i < l.Sites(); i++ {
		p := l.Torus().At(i)
		plus, _ := pre.PlusInSquare(p, w)
		same := plus
		if l.Spin(p) == grid.Minus {
			same = nbhd - plus
		}
		if same < thresh {
			unhappyCount++
		}
		if SuperUnhappy(l, pre, p, w, thresh) {
			superCount++
			// Super-unhappy implies unhappy and flip-helps.
			if same >= thresh || nbhd-same+1 < thresh {
				t.Fatalf("site %v misclassified as super-unhappy", p)
			}
		}
	}
	// At tau = 0.8 on balanced noise nearly everyone is unhappy but
	// almost nobody is super-unhappy.
	if unhappyCount < l.Sites()/2 {
		t.Fatalf("expected widespread unhappiness, got %d", unhappyCount)
	}
	if superCount >= unhappyCount/4 {
		t.Fatalf("super-unhappy (%d) must be much rarer than unhappy (%d)", superCount, unhappyCount)
	}
}

func TestSuperRadicalBoundMirrorsRadicalBound(t *testing.T) {
	// For tau > 1/2, the super-radical bound built from tau-bar should
	// match the radical bound of the mirrored intolerance up to the
	// +2/N correction of tau-bar.
	sHigh := Spec{W: 4, EpsPrime: 0.3, Eps: 0.1, TauTilde: 0.55}
	sLow := Spec{W: 4, EpsPrime: 0.3, Eps: 0.1, TauTilde: 0.45}
	hi := sHigh.SuperRadicalMinorityBound()
	lo := sLow.RadicalMinorityBound()
	// tau-bar = 1 - 0.55 + 2/81 = 0.4747 vs mirrored 0.45: the bounds
	// differ by the 2/N shift; they must be within ~10%.
	if hi <= 0 || lo <= 0 {
		t.Fatalf("bounds must be positive: %v %v", hi, lo)
	}
	ratio := hi / lo
	if ratio < 0.9 || ratio > 1.25 {
		t.Fatalf("mirror correspondence broken: hi=%v lo=%v ratio=%v", hi, lo, ratio)
	}
}

func TestIsSuperRadicalRegionExtremes(t *testing.T) {
	s := Spec{W: 2, EpsPrime: 0.3, Eps: 0.1, TauTilde: 0.55}
	lp := grid.New(31, grid.Plus)
	pre := grid.NewPrefix(lp)
	if !IsSuperRadicalRegion(pre, geom.Point{X: 15, Y: 15}, s, grid.Minus) {
		t.Fatal("all-plus region must be super-radical for minus minority")
	}
	lm := grid.New(31, grid.Minus)
	prem := grid.NewPrefix(lm)
	if IsSuperRadicalRegion(prem, geom.Point{X: 15, Y: 15}, s, grid.Minus) {
		t.Fatal("all-minus region must not be super-radical for minus minority")
	}
}

func TestIsSuperRadicalRegionTooLarge(t *testing.T) {
	s := Spec{W: 10, EpsPrime: 0.3, Eps: 0.1, TauTilde: 0.55}
	l := grid.New(9, grid.Plus)
	if IsSuperRadicalRegion(grid.NewPrefix(l), geom.Point{X: 4, Y: 4}, s, grid.Minus) {
		t.Fatal("oversized region must be rejected")
	}
}

func TestCountSuperUnhappyMinority(t *testing.T) {
	// Single minus dissenter at tau = 0.6 (thresh 6 of 9), w=1: the
	// dissenter has same = 1 < 6 and flip gives 9 >= 6: super-unhappy.
	l := grid.New(9, grid.Plus)
	c := geom.Point{X: 4, Y: 4}
	l.Set(c, grid.Minus)
	if got := CountSuperUnhappyMinority(l, c, 2, 1, 6, grid.Minus); got != 1 {
		t.Fatalf("super-unhappy minority = %d, want 1", got)
	}
	// At tau = 0.8 (thresh 8 of 9) the flip gives 9 >= 8: still 1.
	if got := CountSuperUnhappyMinority(l, c, 2, 1, 8, grid.Minus); got != 1 {
		t.Fatalf("super-unhappy minority at 0.8 = %d, want 1", got)
	}
	// Two adjacent minus dissenters at thresh 9: each flip gives
	// same' = 9 - 2 + 1 = 8 < 9: unhappy but NOT super-unhappy.
	l2 := grid.New(9, grid.Plus)
	l2.Set(c, grid.Minus)
	l2.Set(geom.Point{X: 5, Y: 4}, grid.Minus)
	if got := CountSuperUnhappyMinority(l2, c, 2, 1, 9, grid.Minus); got != 0 {
		t.Fatalf("blocked flips must not be super-unhappy: got %d", got)
	}
}
