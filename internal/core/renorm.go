package core

import (
	"errors"
	"fmt"
	"math"

	"gridseg/internal/geom"
	"gridseg/internal/grid"
)

// BlockField is the renormalized grid of Section IV.B: the lattice is
// divided into m x m blocks, each classified good or bad by the Lemma 11
// criterion. Block coordinates live on a torus of side n/m.
type BlockField struct {
	M    int // block side in lattice units
	Side int // blocks per row/column, n/m
	good []bool
}

// Renormalize divides l into m-blocks and classifies each with the
// Lemma 11 test: a block is good when every intersection I of a
// (2w+1)^2 window with the block satisfies |W_I - N_I/2| < N^{1/2+eps},
// where W_I is the number of minus agents in I and N = (2w+1)^2.
// m must divide n and the window must not exceed the lattice.
func Renormalize(l *grid.Lattice, m, w int, eps float64) (*BlockField, error) {
	n := l.N()
	if m < 1 || n%m != 0 {
		return nil, fmt.Errorf("core: block side %d must divide lattice side %d", m, n)
	}
	if w < 1 || 2*w+1 > n {
		return nil, errors.New("core: invalid horizon for renormalization")
	}
	if eps <= 0 || eps >= 0.5 {
		return nil, errors.New("core: eps must be in (0, 1/2)")
	}
	pre := grid.NewPrefix(l)
	nbhd := geom.SquareSize(w)
	bound := math.Pow(float64(nbhd), 0.5+eps)
	side := n / m
	bf := &BlockField{M: m, Side: side, good: make([]bool, side*side)}
	win := 2*w + 1
	for by := 0; by < side; by++ {
		for bx := 0; bx < side; bx++ {
			bf.good[by*side+bx] = blockIsGood(pre, bx*m, by*m, m, win, bound)
		}
	}
	return bf, nil
}

// blockIsGood enumerates all distinct intersections of a win x win
// window with the block [x0, x0+m) x [y0, y0+m). Each intersection is a
// rectangle [max(wx,x0), min(wx+win, x0+m)) x (same in y); the window's
// top-left wx ranges over [x0-win+1, x0+m-1]. Counts come from prefix
// sums, so each candidate costs O(1).
func blockIsGood(pre *grid.Prefix, x0, y0, m, win int, bound float64) bool {
	// Distinct x-extents of the intersection as the window slides.
	type span struct{ lo, wd int }
	spansFor := func(base int) []span {
		var out []span
		seen := map[[2]int]bool{}
		for wx := base - win + 1; wx <= base+m-1; wx++ {
			lo := maxInt(wx, base)
			hi := minInt(wx+win, base+m)
			if hi <= lo {
				continue
			}
			key := [2]int{lo, hi - lo}
			if !seen[key] {
				seen[key] = true
				out = append(out, span{lo: lo, wd: hi - lo})
			}
		}
		return out
	}
	xs := spansFor(x0)
	ys := spansFor(y0)
	for _, sx := range xs {
		for _, sy := range ys {
			area := sx.wd * sy.wd
			plus := pre.PlusInRect(sx.lo, sy.lo, sx.wd, sy.wd)
			minus := float64(area - plus)
			if math.Abs(minus-float64(area)/2) >= bound {
				return false
			}
		}
	}
	return true
}

// wrapB wraps a block coordinate onto the block torus.
func (b *BlockField) wrapB(a int) int {
	a %= b.Side
	if a < 0 {
		a += b.Side
	}
	return a
}

// Good reports whether block (x, y) is good (coordinates wrap).
func (b *BlockField) Good(x, y int) bool {
	return b.good[b.wrapB(y)*b.Side+b.wrapB(x)]
}

// SetGood overrides a block's classification; used by tests and by
// synthetic-field constructions.
func (b *BlockField) SetGood(x, y int, good bool) {
	b.good[b.wrapB(y)*b.Side+b.wrapB(x)] = good
}

// NewSyntheticField builds a block field directly from a boolean
// function, for percolation-style experiments that do not need an
// underlying lattice.
func NewSyntheticField(side, m int, good func(x, y int) bool) *BlockField {
	bf := &BlockField{M: m, Side: side, good: make([]bool, side*side)}
	for y := 0; y < side; y++ {
		for x := 0; x < side; x++ {
			bf.good[y*side+x] = good(x, y)
		}
	}
	return bf
}

// CountGood returns the number of good blocks.
func (b *BlockField) CountGood() int {
	c := 0
	for _, g := range b.good {
		if g {
			c++
		}
	}
	return c
}

// GoodFraction returns the fraction of good blocks.
func (b *BlockField) GoodFraction() float64 {
	return float64(b.CountGood()) / float64(len(b.good))
}

// BadRatio returns (number of bad blocks)/(number of good blocks), the
// Lemma 12 observable; it returns +Inf when no block is good.
func (b *BlockField) BadRatio() float64 {
	good := b.CountGood()
	bad := len(b.good) - good
	if good == 0 {
		return math.Inf(1)
	}
	return float64(bad) / float64(good)
}

// BadClusterStats describes the 8-connected clusters of bad blocks
// (8-adjacency is the dual of the 4-connected good circuits).
type BadClusterStats struct {
	Count     int // number of bad clusters
	MaxSize   int // largest cluster (blocks)
	MaxRadius int // largest l1 radius from a cluster's first-found block
}

// BadClusters returns statistics of the bad-block clusters, the Lemma 14
// observable.
func (b *BlockField) BadClusters() BadClusterStats {
	side := b.Side
	tor := geom.NewTorus(side)
	visited := make([]bool, side*side)
	var stats BadClusterStats
	var queue []int32
	for start := 0; start < side*side; start++ {
		if visited[start] || b.good[start] {
			continue
		}
		stats.Count++
		origin := tor.At(start)
		visited[start] = true
		queue = append(queue[:0], int32(start))
		size := 0
		radius := 0
		for head := 0; head < len(queue); head++ {
			i := int(queue[head])
			size++
			p := tor.At(i)
			if d := tor.L1(origin, p); d > radius {
				radius = d
			}
			tor.Neighbors8(p, func(q geom.Point) {
				j := tor.Index(q)
				if !visited[j] && !b.good[j] {
					visited[j] = true
					queue = append(queue, int32(j))
				}
			})
		}
		if size > stats.MaxSize {
			stats.MaxSize = size
		}
		if radius > stats.MaxRadius {
			stats.MaxRadius = radius
		}
	}
	return stats
}

// HasSurroundingCircuit reports whether a 4-connected circuit of good
// blocks inside the block annulus inner <= cheb <= outer around center
// surrounds the center. By planar duality this holds iff no 8-connected
// path of bad blocks crosses the annulus from its inner ring to its
// outer ring. Radii are in block units; the annulus must not wrap.
func (b *BlockField) HasSurroundingCircuit(center geom.Point, inner, outer int) bool {
	if inner < 1 || outer <= inner {
		return false
	}
	if 2*outer+1 > b.Side {
		return false
	}
	tor := geom.NewTorus(b.Side)
	inAnnulus := func(p geom.Point) (int, bool) {
		d := tor.Cheb(center, p)
		return d, d >= inner && d <= outer
	}
	visited := map[geom.Point]bool{}
	var queue []geom.Point
	// Seeds: bad blocks on the inner ring.
	tor.SquarePerimeter(center, inner, func(p geom.Point) {
		if !b.Good(p.X, p.Y) && !visited[p] {
			visited[p] = true
			queue = append(queue, p)
		}
	})
	for head := 0; head < len(queue); head++ {
		p := queue[head]
		if d := tor.Cheb(center, p); d == outer {
			return false // bad path crossed the annulus
		}
		crossed := false
		tor.Neighbors8(p, func(q geom.Point) {
			if crossed || visited[q] {
				return
			}
			if _, ok := inAnnulus(q); !ok {
				return
			}
			if b.Good(q.X, q.Y) {
				return
			}
			visited[q] = true
			queue = append(queue, q)
		})
	}
	return true
}

// CircuitLength estimates the length (in blocks) of the shortest
// 4-connected good circuit surrounding center within the annulus, by
// cutting the annulus along the positive-x seam and finding the shortest
// good path from just above the seam to just below it that does not
// cross the seam. It returns ok=false when no circuit exists.
//
// The Lemma 13 comparison is that this length is proportional to the
// annulus radius (Garet-Marchand: chemical distance ~ l1 distance).
func (b *BlockField) CircuitLength(center geom.Point, inner, outer int) (int, bool) {
	if !b.HasSurroundingCircuit(center, inner, outer) {
		return 0, false
	}
	tor := geom.NewTorus(b.Side)
	type node struct {
		p geom.Point
		d int
	}
	dist := map[geom.Point]int{}
	var queue []node
	// Seeds: good blocks on the seam row (dy == 0, dx in [inner, outer]).
	for dx := inner; dx <= outer; dx++ {
		p := tor.Add(center, dx, 0)
		if b.Good(p.X, p.Y) {
			dist[p] = 1
			queue = append(queue, node{p, 1})
		}
	}
	seamCrossing := func(p, q geom.Point) bool {
		// Forbid steps between dy=0 and dy=-1 within the seam columns.
		dpx, dpy := tor.Delta(p.X, center.X), tor.Delta(p.Y, center.Y)
		dqx, dqy := tor.Delta(q.X, center.X), tor.Delta(q.Y, center.Y)
		if dpx < inner || dqx < inner {
			return false
		}
		return (dpy == 0 && dqy == -1) || (dpy == -1 && dqy == 0)
	}
	inAnnulus := func(p geom.Point) bool {
		d := tor.Cheb(center, p)
		return d >= inner && d <= outer
	}
	for head := 0; head < len(queue); head++ {
		cur := queue[head]
		dx, dy := tor.Delta(cur.p.X, center.X), tor.Delta(cur.p.Y, center.Y)
		if dy == -1 && dx >= inner {
			// Reached just below the seam: close the circuit.
			return cur.d + 1, true
		}
		tor.Neighbors4(cur.p, func(q geom.Point) {
			if _, seen := dist[q]; seen {
				return
			}
			if !inAnnulus(q) || !b.Good(q.X, q.Y) || seamCrossing(cur.p, q) {
				return
			}
			dist[q] = cur.d + 1
			queue = append(queue, node{q, cur.d + 1})
		})
	}
	// A circuit exists by duality but the seam decomposition failed to
	// realize it (possible only in degenerate annuli); report absence.
	return 0, false
}

// PathToRing returns the length of the shortest 4-connected path of good
// blocks from a good block adjacent to (or at) the center to the ring at
// Chebyshev distance ringDist, or ok=false if none exists. Together with
// CircuitLength this realizes the r-chemical path of Section IV.B.
func (b *BlockField) PathToRing(center geom.Point, ringDist int) (int, bool) {
	if ringDist < 1 || 2*ringDist+1 > b.Side {
		return 0, false
	}
	tor := geom.NewTorus(b.Side)
	dist := map[geom.Point]int{}
	var queue []geom.Point
	seed := func(p geom.Point) {
		if _, seen := dist[p]; !seen && b.Good(p.X, p.Y) {
			dist[p] = 1
			queue = append(queue, p)
		}
	}
	if b.Good(center.X, center.Y) {
		seed(center)
	} else {
		tor.Neighbors4(center, seed)
	}
	for head := 0; head < len(queue); head++ {
		p := queue[head]
		if tor.Cheb(center, p) >= ringDist {
			return dist[p], true
		}
		tor.Neighbors4(p, func(q geom.Point) {
			if _, seen := dist[q]; seen || !b.Good(q.X, q.Y) {
				return
			}
			if tor.Cheb(center, q) > ringDist {
				return
			}
			dist[q] = dist[p] + 1
			queue = append(queue, q)
		})
	}
	return 0, false
}

// ChemicalPath reports the Section IV.B construction around a center
// block: existence of a surrounding good circuit in the annulus
// [inner, outer], its estimated length, and the length of a good path
// from the center to the ring. ok is true only when both parts exist.
type ChemicalPath struct {
	CircuitLen int
	PathLen    int
	TotalLen   int
	OK         bool
}

// FindChemicalPath assembles the r-chemical path observables.
func (b *BlockField) FindChemicalPath(center geom.Point, inner, outer int) ChemicalPath {
	cl, okC := b.CircuitLength(center, inner, outer)
	pl, okP := b.PathToRing(center, inner)
	cp := ChemicalPath{CircuitLen: cl, PathLen: pl, OK: okC && okP}
	if cp.OK {
		cp.TotalLen = cl + pl
	}
	return cp
}
