// Package core implements the paper's contribution-specific geometric
// constructs: radical regions and unhappy regions (Section III), the
// expandability cascade of Lemma 5, the region-of-expansion predicate of
// Lemma 8, the annular firewall of Lemma 9, and — in renorm.go — the
// renormalized good/bad block field, bad-cluster statistics, and the
// chemical paths and firewalls of Section IV.B (Lemmas 11-14).
//
// Everything here operates on concrete finite configurations: these are
// the executable counterparts of the objects the proofs reason about,
// and the experiment harness uses them to observe the triggering and
// protection mechanisms directly.
package core

import (
	"errors"
	"fmt"
	"math"

	"gridseg/internal/geom"
	"gridseg/internal/grid"
	"gridseg/internal/theory"
)

// Spec bundles the parameters of the triggering construction of Section
// III: the horizon w, the radical-region margin eps' (the paper's
// epsilon-prime, which must exceed f(tau) for the cascade to fire), the
// concentration exponent eps (the paper's epsilon in N^{1/2+eps}), and
// the intolerance tauTilde.
type Spec struct {
	W        int
	EpsPrime float64
	Eps      float64
	TauTilde float64
}

// Validate checks the parameter ranges.
func (s Spec) Validate() error {
	if s.W < 1 {
		return errors.New("core: horizon must be >= 1")
	}
	if s.EpsPrime <= 0 || s.EpsPrime >= 1 {
		return errors.New("core: eps' must be in (0, 1)")
	}
	if s.Eps <= 0 || s.Eps >= 0.5 {
		return errors.New("core: eps must be in (0, 1/2)")
	}
	if s.TauTilde <= 0 || s.TauTilde >= 1 {
		return errors.New("core: tau must be in (0, 1)")
	}
	return nil
}

// N returns the neighborhood size (2w+1)^2.
func (s Spec) N() int { return geom.SquareSize(s.W) }

// Threshold returns the integer happiness threshold ceil(tau*N).
func (s Spec) Threshold() int { return theory.Threshold(s.TauTilde, s.N()) }

// RadicalRadius returns the radius (1+eps')w of a radical region,
// rounded to the nearest integer.
func (s Spec) RadicalRadius() int {
	return int(math.Round((1 + s.EpsPrime) * float64(s.W)))
}

// RadicalMinorityBound returns the strict upper bound on the number of
// minority agents a radical region may contain:
// tau-hat * (1+eps')^2 * N (Section III).
func (s Spec) RadicalMinorityBound() float64 {
	scale := (1 + s.EpsPrime) * (1 + s.EpsPrime)
	return theory.TauHat(s.TauTilde, s.N(), s.Eps) * scale * float64(s.N())
}

// UnhappyRadius returns the radius eps'*w of the unhappy region at the
// center of a radical region (Lemma 4), rounded to nearest and at
// least 0.
func (s Spec) UnhappyRadius() int {
	r := int(math.Round(s.EpsPrime * float64(s.W)))
	if r < 0 {
		r = 0
	}
	return r
}

// UnhappyMinorityBound returns the Lemma 4 lower bound on the number of
// unhappy minority agents in the unhappy region:
// floor(tau * eps'^2 * N - N^{1/2+eps}).
func (s Spec) UnhappyMinorityBound() int {
	n := float64(s.N())
	v := s.TauTilde*s.EpsPrime*s.EpsPrime*n - math.Pow(n, 0.5+s.Eps)
	if v < 0 {
		return 0
	}
	return int(math.Floor(v))
}

// IsRadicalRegion reports whether the neighborhood of radius
// (1+eps')w centered at c is a radical region for the given minority
// spin: it contains strictly fewer than tau-hat (1+eps')^2 N agents of
// that type. pre must be a snapshot of the configuration under test.
func IsRadicalRegion(pre *grid.Prefix, c geom.Point, s Spec, minority grid.Spin) bool {
	radius := s.RadicalRadius()
	if 2*radius+1 > pre.N() {
		return false
	}
	side := 2*radius + 1
	plus := pre.PlusInRect(c.X-radius, c.Y-radius, side, side)
	count := plus
	if minority == grid.Minus {
		count = side*side - plus
	}
	return float64(count) < s.RadicalMinorityBound()
}

// FindRadicalRegions scans every site as a candidate center and returns
// the centers of radical regions for the given minority spin. stride > 1
// subsamples the scan grid for speed.
func FindRadicalRegions(l *grid.Lattice, s Spec, minority grid.Spin, stride int) []geom.Point {
	if stride < 1 {
		stride = 1
	}
	pre := grid.NewPrefix(l)
	var out []geom.Point
	for y := 0; y < l.N(); y += stride {
		for x := 0; x < l.N(); x += stride {
			c := geom.Point{X: x, Y: y}
			if IsRadicalRegion(pre, c, s, minority) {
				out = append(out, c)
			}
		}
	}
	return out
}

// happyWithCounts reports whether an agent of the given spin with the
// given plus-count in its size-N neighborhood meets the threshold.
func happyWithCounts(spin grid.Spin, plusCount, nbhd, thresh int) bool {
	same := plusCount
	if spin == grid.Minus {
		same = nbhd - plusCount
	}
	return same >= thresh
}

// CountUnhappyMinority counts the agents of the given minority spin
// inside N_radius(c) that are unhappy in the current configuration of l.
// It is the Lemma 4 observable.
func CountUnhappyMinority(l *grid.Lattice, c geom.Point, radius, w, thresh int, minority grid.Spin) int {
	pre := grid.NewPrefix(l)
	nbhd := geom.SquareSize(w)
	count := 0
	l.Torus().Square(c, radius, func(p geom.Point) {
		if l.Spin(p) != minority {
			return
		}
		// The horizon is validated by every caller (2w+1 <= n), so the
		// count query cannot fail here.
		plus, _ := pre.PlusInSquare(p, w)
		if !happyWithCounts(minority, plus, nbhd, thresh) {
			count++
		}
	})
	return count
}

// CascadeResult reports the outcome of the Lemma 5 constrained cascade.
type CascadeResult struct {
	Expandable   bool // the center block N_{w/2} became monochromatic
	Flips        int  // flips performed inside the radical region
	Budget       int  // the paper's flip budget (w+1)^2
	WithinBudget bool
}

// Expandable runs the Lemma 5 construction: starting from the current
// configuration around center c, it performs every admissible flip of a
// minority agent *inside the radical region only* (a monotone cascade:
// for tau < 1/2, flipping minority agents toward the majority can only
// make other minority agents unhappier, so greedy order is exhaustive)
// and reports whether the neighborhood N_{floor(w/2)}(c) becomes
// monochromatic of the majority type. The configuration of l is not
// modified: the cascade runs on a windowed copy large enough that no
// evaluated neighborhood wraps.
func Expandable(l *grid.Lattice, c geom.Point, s Spec, minority grid.Spin) (CascadeResult, error) {
	if err := s.Validate(); err != nil {
		return CascadeResult{}, err
	}
	radius := s.RadicalRadius()
	w := s.W
	half := radius + 2*w // window half-side: evaluated balls never wrap
	side := 2*half + 1
	if side > l.N() {
		return CascadeResult{}, fmt.Errorf("core: window side %d exceeds lattice side %d", side, l.N())
	}
	// Copy the window; wc is the center in window coordinates.
	win := grid.New(side, grid.Minus)
	tor := l.Torus()
	for dy := -half; dy <= half; dy++ {
		for dx := -half; dx <= half; dx++ {
			win.Set(geom.Point{X: half + dx, Y: half + dy}, l.Spin(tor.Add(c, dx, dy)))
		}
	}
	wc := geom.Point{X: half, Y: half}
	wtor := win.Torus()
	nbhd := s.N()
	thresh := s.Threshold()
	counts := win.WindowCounts(w)

	flipTo := minority.Opposite()
	var delta int32 = 1
	if flipTo == grid.Minus {
		delta = -1
	}
	res := CascadeResult{Budget: (w + 1) * (w + 1)}
	// Monotone cascade: sweep the radical region until no admissible
	// minority flip remains. Each flip updates the window counts.
	for {
		flipped := false
		wtor.Square(wc, radius, func(p geom.Point) {
			i := wtor.Index(p)
			if win.SpinAt(i) != minority {
				return
			}
			plus := int(counts[i])
			if happyWithCounts(minority, plus, nbhd, thresh) {
				return
			}
			// Unhappy minority agent: admissible iff the flip makes
			// it happy (automatic below tau = 1/2).
			newSame := nbhd - sameOf(minority, plus, nbhd) + 1
			if newSame < thresh {
				return
			}
			win.SetAt(i, flipTo)
			res.Flips++
			flipped = true
			wtor.Square(p, w, func(q geom.Point) {
				counts[wtor.Index(q)] += delta
			})
		})
		if !flipped {
			break
		}
	}
	// Check the center block N_{floor(w/2)}.
	mono := true
	wtor.Square(wc, w/2, func(p geom.Point) {
		if win.Spin(p) != flipTo {
			mono = false
		}
	})
	res.Expandable = mono
	res.WithinBudget = res.Flips <= res.Budget
	return res, nil
}

func sameOf(spin grid.Spin, plusCount, nbhd int) int {
	if spin == grid.Plus {
		return plusCount
	}
	return nbhd - plusCount
}

// Firewall is the annular structure of Lemma 9: the set of agents in
// A_r(u) = { y : r - sqrt(2) w <= ||u-y||_2 <= r }. Once monochromatic,
// the annulus is static and the interior is isolated from the exterior.
type Firewall struct {
	Center geom.Point
	R      float64 // outer radius; inner radius is R - sqrt(2)*W
	W      int
}

// InnerRadius returns r - sqrt(2) w.
func (f Firewall) InnerRadius() float64 { return f.R - math.Sqrt2*float64(f.W) }

// Sites returns the annulus agent positions.
func (f Firewall) Sites(tor geom.Torus) []geom.Point {
	var out []geom.Point
	tor.Annulus(f.Center, f.InnerRadius(), f.R, func(p geom.Point) { out = append(out, p) })
	return out
}

// InteriorSites returns the agents strictly inside the annulus.
func (f Firewall) InteriorSites(tor geom.Torus) []geom.Point {
	var out []geom.Point
	inner := f.InnerRadius()
	tor.Disc(f.Center, inner, func(p geom.Point) {
		if tor.Euclid(f.Center, p) < inner {
			out = append(out, p)
		}
	})
	return out
}

// IsMonochromatic reports whether every agent of the annulus has the
// same type, and that type.
func (f Firewall) IsMonochromatic(l *grid.Lattice) (grid.Spin, bool) {
	sites := f.Sites(l.Torus())
	if len(sites) == 0 {
		return grid.Plus, false
	}
	spin := l.Spin(sites[0])
	for _, p := range sites[1:] {
		if l.Spin(p) != spin {
			return spin, false
		}
	}
	return spin, true
}

// FindFirewall scans outer radii r = rMin..rMax (integer steps) for an
// annular firewall centered at u that is monochromatic in the current
// configuration, returning the first hit.
func FindFirewall(l *grid.Lattice, u geom.Point, w int, rMin, rMax int) (Firewall, bool) {
	for r := rMin; r <= rMax; r++ {
		f := Firewall{Center: u, R: float64(r), W: w}
		if f.InnerRadius() <= 0 {
			continue
		}
		if 2*r+1 > l.N() {
			break
		}
		if _, ok := f.IsMonochromatic(l); ok {
			return f, true
		}
	}
	return Firewall{}, false
}

// IsRegionOfExpansion implements the Lemma 8 predicate: a neighborhood
// N_radius(c) such that placing a monochromatic block N_{floor(w/2)} of
// the target type anywhere inside it makes every opposite-type agent on
// the block's outside boundary unhappy with probability one (i.e. in
// every configuration consistent with the current one outside the
// block). The check substitutes the block into the configuration and
// tests the boundary agents' counts exactly, using prefix sums.
// stride subsamples the placement grid (1 = exhaustive).
func IsRegionOfExpansion(l *grid.Lattice, c geom.Point, radius, w, thresh int, target grid.Spin, stride int) bool {
	if stride < 1 {
		stride = 1
	}
	pre := grid.NewPrefix(l)
	tor := l.Torus()
	nbhd := geom.SquareSize(w)
	blockR := w / 2
	opp := target.Opposite()
	ok := true
	for dy := -radius; dy <= radius && ok; dy += stride {
		for dx := -radius; dx <= radius && ok; dx += stride {
			bc := tor.Add(c, dx, dy) // block center placement
			// Every opposite agent on the ring just outside the block.
			tor.SquarePerimeter(bc, blockR+1, func(v geom.Point) {
				if !ok || l.Spin(v) != opp {
					return
				}
				// Plus count of N_w(v) after substituting the block:
				// actual count, minus the block-area contribution,
				// plus the full block intersection if target is +.
				// The horizon is validated upstream, so the query
				// cannot fail.
				plus, _ := pre.PlusInSquare(v, w)
				interPlus, interArea := intersectionCounts(pre, tor, v, w, bc, blockR, l.N())
				plusAfter := plus - interPlus
				if target == grid.Plus {
					plusAfter += interArea
				}
				if happyWithCounts(opp, plusAfter, nbhd, thresh) {
					ok = false
				}
			})
		}
	}
	return ok
}

// intersectionCounts returns the +1 count and the area of the
// intersection of N_w(v) with the block N_blockR(bc), both squares on
// the torus. The intersection of two axis-aligned torus squares whose
// sides are below n/2 is a single rectangle computed from wrapped
// deltas.
func intersectionCounts(pre *grid.Prefix, tor geom.Torus, v geom.Point, w int, bc geom.Point, blockR, n int) (plus, area int) {
	dx := tor.Delta(bc.X, v.X)
	dy := tor.Delta(bc.Y, v.Y)
	// Overlap in relative coordinates centered at v.
	lox := maxInt(-w, dx-blockR)
	hix := minInt(w, dx+blockR)
	loy := maxInt(-w, dy-blockR)
	hiy := minInt(w, dy+blockR)
	if lox > hix || loy > hiy {
		return 0, 0
	}
	wd := hix - lox + 1
	ht := hiy - loy + 1
	plus = pre.PlusInRect(v.X+lox, v.Y+loy, wd, ht)
	return plus, wd * ht
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
