package core

import (
	"testing"

	"gridseg/internal/dynamics"
	"gridseg/internal/geom"
	"gridseg/internal/grid"
	"gridseg/internal/rng"
)

func TestSpreadTimeValidation(t *testing.T) {
	if _, err := SpreadTime(nil, geom.Point{}, 2, grid.Plus, 10); err == nil {
		t.Fatal("want error for nil process")
	}
	lat := grid.New(9, grid.Plus)
	p, err := dynamics.New(lat, 1, 0.5, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SpreadTime(p, geom.Point{}, 10, grid.Plus, 10); err == nil {
		t.Fatal("want error for oversized probe region")
	}
}

// In an all-plus sea a plus probe is happy everywhere and the process is
// fixated: the probe never trips.
func TestSpreadTimeNeverTripsInFriendlySea(t *testing.T) {
	lat := grid.New(21, grid.Plus)
	p, err := dynamics.New(lat, 2, 0.45, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	res, err := SpreadTime(p, geom.Point{X: 10, Y: 10}, 4, grid.Plus, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tripped || res.Flips != 0 {
		t.Fatalf("unexpected trip: %+v", res)
	}
}

// A probe over a hostile region trips immediately at time zero.
func TestSpreadTimeImmediateTrip(t *testing.T) {
	lat := grid.New(21, grid.Minus)
	p, err := dynamics.New(lat, 2, 0.45, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	res, err := SpreadTime(p, geom.Point{X: 10, Y: 10}, 4, grid.Plus, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Tripped || res.Time != 0 {
		t.Fatalf("expected immediate trip: %+v", res)
	}
}

// A hostile minus blob in a plus sea does NOT invade: corner erosion
// clips it into a stable octagon and the process fixates untripped.
// This stalling is the substance of the paper's firewall lemmas —
// monochromatic phases are impenetrable below tau = 1/2.
func TestSpreadTimeHostileBlobStalls(t *testing.T) {
	lat := grid.New(41, grid.Plus)
	tor := lat.Torus()
	blob := geom.Point{X: 32, Y: 32}
	tor.Square(blob, 6, func(q geom.Point) { lat.Set(q, grid.Minus) })
	p, err := dynamics.New(lat, 2, 0.45, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	center := geom.Point{X: 10, Y: 10}
	res, err := SpreadTime(p, center, 3, grid.Plus, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tripped {
		t.Fatalf("stable blob must not reach the probe: %+v", res)
	}
	if !p.Fixated() {
		t.Fatal("process must have fixated (octagonal blob is stable)")
	}
	if res.Flips == 0 {
		t.Fatal("corner erosion must have produced flips")
	}
}

// In an ACTIVE balanced sea (majority rule, tau-tilde = 0.5) the
// coarsening dynamics move real fronts: starting from a probe region
// that is untripped at t = 0, the probe eventually trips after a
// genuine evolution. Deterministic seeds chosen so that the first
// untripped center trips after O(1000) flips.
func TestSpreadTimeTripsInActiveSea(t *testing.T) {
	lat := grid.Random(41, 0.5, rng.New(1))
	p, err := dynamics.New(lat, 2, 0.5, rng.New(101))
	if err != nil {
		t.Fatal(err)
	}
	tor := lat.Torus()
	var center geom.Point
	found := false
	for i := 0; i < lat.Sites() && !found; i++ {
		c := tor.At(i)
		trip0 := false
		tor.Square(c, 2, func(q geom.Point) {
			if !p.HappyAs(tor.Index(q), grid.Plus) {
				trip0 = true
			}
		})
		if !trip0 {
			center = c
			found = true
		}
	}
	if !found {
		t.Fatal("no untripped probe center at t=0 for this seed")
	}
	res, err := SpreadTime(p, center, 2, grid.Plus, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Tripped {
		t.Fatalf("active sea must trip the probe: %+v", res)
	}
	if res.Flips < 1 || res.Time <= 0 {
		t.Fatalf("trip must require a genuine evolution: %+v", res)
	}
	// Budget path: a one-flip budget cannot reproduce the trip.
	lat2 := grid.Random(41, 0.5, rng.New(1))
	p2, err := dynamics.New(lat2, 2, 0.5, rng.New(101))
	if err != nil {
		t.Fatal(err)
	}
	res2, err := SpreadTime(p2, center, 2, grid.Plus, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Tripped {
		t.Fatalf("one flip must not trip this probe: %+v", res2)
	}
	if res2.Flips != 1 {
		t.Fatalf("budget must be honored: %+v", res2)
	}
}
