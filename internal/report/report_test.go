package report

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestTableString(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRow("b", "22")
	out := tb.String()
	if !strings.Contains(out, "demo") {
		t.Fatal("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title, header, rule, two rows.
	if len(lines) != 5 {
		t.Fatalf("got %d lines: %q", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "name") {
		t.Fatalf("header line %q", lines[1])
	}
	if !strings.Contains(lines[3], "alpha") || !strings.Contains(lines[4], "22") {
		t.Fatal("rows missing")
	}
}

func TestTableNoTitle(t *testing.T) {
	tb := NewTable("", "a")
	tb.AddRow("x")
	if strings.HasPrefix(tb.String(), "\n") {
		t.Fatal("no leading blank line expected")
	}
}

func TestAddRowPadsAndTruncates(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.AddRow("only")
	tb.AddRow("x", "y", "z")
	if tb.Rows[0][1] != "" {
		t.Fatal("short row must be padded")
	}
	if len(tb.Rows[1]) != 2 {
		t.Fatal("long row must be truncated")
	}
}

func TestWriteCSV(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.AddRow("1", "hello, world")
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := "a,b\n1,\"hello, world\"\n"
	if got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}

func TestWriteJSON(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.AddRow("1", "two")
	var buf bytes.Buffer
	if err := tb.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Title   string     `json:"title"`
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON %q: %v", buf.String(), err)
	}
	if doc.Title != "t" || len(doc.Columns) != 2 || len(doc.Rows) != 1 || doc.Rows[0][1] != "two" {
		t.Fatalf("round trip mismatch: %+v", doc)
	}
	// An empty table must still emit a rows array, not null.
	var empty bytes.Buffer
	if err := NewTable("", "x").WriteJSON(&empty); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(empty.String(), "null") {
		t.Fatalf("empty table emitted null: %s", empty.String())
	}
}

func TestFormatters(t *testing.T) {
	if F(1.23456789) != "1.2346" {
		t.Fatalf("F = %q", F(1.23456789))
	}
	if F3(1.23456) != "1.235" {
		t.Fatalf("F3 = %q", F3(1.23456))
	}
	if I(42) != "42" || I64(-7) != "-7" {
		t.Fatal("int formatters broken")
	}
}
