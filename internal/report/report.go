// Package report provides the small tabular-output toolkit used by the
// experiment harness: aligned text tables for the terminal, and CSV and
// JSON for downstream plotting.
package report

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Table is a titled grid of string cells with a header row.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; short rows are padded with empty cells and long
// rows are truncated to the column count.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Columns))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table as aligned text.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := len(widths) - 1
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// WriteCSV emits the table (header + rows) as CSV.
func (t *Table) WriteCSV(out io.Writer) error {
	w := csv.NewWriter(out)
	if err := w.Write(t.Columns); err != nil {
		return fmt.Errorf("report: %w", err)
	}
	for _, row := range t.Rows {
		if err := w.Write(row); err != nil {
			return fmt.Errorf("report: %w", err)
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return fmt.Errorf("report: %w", err)
	}
	return nil
}

// WriteJSON emits the table as a single JSON document with title,
// column header, and row list.
func (t *Table) WriteJSON(out io.Writer) error {
	doc := struct {
		Title   string     `json:"title,omitempty"`
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
	}{Title: t.Title, Columns: t.Columns, Rows: t.Rows}
	if doc.Rows == nil {
		doc.Rows = [][]string{}
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("report: %w", err)
	}
	return nil
}

// F formats a float compactly (strconv 'g' with 5 significant digits).
func F(v float64) string { return strconv.FormatFloat(v, 'g', 5, 64) }

// F3 formats a float with 3 decimal places.
func F3(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }

// I formats an int.
func I(v int) string { return strconv.Itoa(v) }

// I64 formats an int64.
func I64(v int64) string { return strconv.FormatInt(v, 10) }
