package topology

import (
	"math"
	"strings"
	"testing"

	"gridseg/internal/rng"
)

func TestParseBoundary(t *testing.T) {
	cases := []struct {
		in   string
		want Boundary
		ok   bool
	}{
		{"", Torus, true},
		{"torus", Torus, true},
		{"open", Open, true},
		{"OPEN", Open, true},
		{"wall", Open, true},
		{"klein", Torus, false},
	}
	for _, tc := range cases {
		got, err := ParseBoundary(tc.in)
		if (err == nil) != tc.ok {
			t.Errorf("ParseBoundary(%q) error = %v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if tc.ok && got != tc.want {
			t.Errorf("ParseBoundary(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
	if Torus.String() != "torus" || Open.String() != "open" {
		t.Errorf("Boundary labels: %q, %q", Torus.String(), Open.String())
	}
}

func TestParseTauDistRoundTrip(t *testing.T) {
	cases := []struct {
		in        string
		canonical string
	}{
		{"", "global"},
		{"global", "global"},
		{"GLOBAL", "global"},
		{"mix:0.35,0.45:0.5", "mix:0.35,0.45:0.5"},
		{"mix:0.350,0.45:0.50", "mix:0.35,0.45:0.5"},
		{"uniform:0.3:0.5", "uniform:0.3:0.5"},
	}
	for _, tc := range cases {
		d, err := ParseTauDist(tc.in)
		if err != nil {
			t.Errorf("ParseTauDist(%q): %v", tc.in, err)
			continue
		}
		if got := d.String(); got != tc.canonical {
			t.Errorf("ParseTauDist(%q).String() = %q, want %q", tc.in, got, tc.canonical)
		}
		// Canonical forms must re-parse to themselves.
		d2, err := ParseTauDist(d.String())
		if err != nil || d2.String() != d.String() {
			t.Errorf("canonical %q does not round-trip: %v", d.String(), err)
		}
	}
}

func TestParseTauDistRejects(t *testing.T) {
	for _, in := range []string{
		"mix", "mix:0.4", "mix:0.4,0.5", "mix:a,b:c", "mix:1.5,0.4:0.5",
		"mix:0.4,0.5:2", "uniform", "uniform:0.5", "uniform:0.6:0.4",
		"uniform:x:y", "uniform:-0.1:0.5", "gauss:0:1", "mix:NaN,0.4:0.5",
	} {
		if _, err := ParseTauDist(in); err == nil {
			t.Errorf("ParseTauDist(%q) accepted, want error", in)
		}
	}
}

func TestTauDistSample(t *testing.T) {
	src := rng.New(1)
	d, err := ParseTauDist("mix:0.35,0.45:0.5")
	if err != nil {
		t.Fatal(err)
	}
	seen := map[float64]int{}
	for i := 0; i < 1000; i++ {
		v := d.Sample(0.42, src)
		if v != 0.35 && v != 0.45 {
			t.Fatalf("mix sample %v outside support", v)
		}
		seen[v]++
	}
	if seen[0.35] < 400 || seen[0.45] < 400 {
		t.Errorf("mix weights look off: %v", seen)
	}

	u, err := ParseTauDist("uniform:0.3:0.5")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		v := u.Sample(0.42, src)
		if v < 0.3 || v > 0.5 {
			t.Fatalf("uniform sample %v outside [0.3, 0.5]", v)
		}
	}

	// Global consumes no randomness and returns the global tau.
	a, b := rng.New(7), rng.New(7)
	if got := Global().Sample(0.42, a); got != 0.42 {
		t.Errorf("global sample = %v, want 0.42", got)
	}
	if a.Uint64() != b.Uint64() {
		t.Error("global sample consumed randomness")
	}
}

func TestSampleFieldDeterministic(t *testing.T) {
	d, _ := ParseTauDist("uniform:0.3:0.5")
	f1 := d.SampleField(100, 0.42, rng.New(3))
	f2 := d.SampleField(100, 0.42, rng.New(3))
	if len(f1) != 100 {
		t.Fatalf("field length %d", len(f1))
	}
	for i := range f1 {
		if f1[i] != f2[i] {
			t.Fatalf("field not deterministic at %d", i)
		}
	}
	if Global().SampleField(100, 0.42, rng.New(3)) != nil {
		t.Error("global field must be nil (scalar fast path)")
	}
}

func TestScenarioValidateAndCanonical(t *testing.T) {
	def := Default()
	if !def.IsDefault() {
		t.Error("Default() not IsDefault")
	}
	if err := def.Validate(); err != nil {
		t.Error(err)
	}
	if got := def.Canonical(); got != "boundary=torus rho=0 taudist=global" {
		t.Errorf("default canonical = %q", got)
	}

	mix, _ := ParseTauDist("mix:0.35,0.45:0.5")
	sc := Scenario{Boundary: Open, Rho: 0.05, TauDist: mix}
	if sc.IsDefault() {
		t.Error("non-default scenario reports IsDefault")
	}
	if err := sc.Validate(); err != nil {
		t.Error(err)
	}
	want := "boundary=open rho=0.05 taudist=mix:0.35,0.45:0.5"
	if got := sc.Canonical(); got != want {
		t.Errorf("canonical = %q, want %q", got, want)
	}

	for _, bad := range []Scenario{
		{Rho: -0.1},
		{Rho: 1},
		{Rho: math.NaN()},
		{Boundary: Boundary(9)},
		{TauDist: TauDist{Kind: "gauss"}},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("scenario %+v accepted, want error", bad)
		}
	}
}

func TestScenarioCanonicalDistinguishes(t *testing.T) {
	mix, _ := ParseTauDist("mix:0.35,0.45:0.5")
	scenarios := []Scenario{
		{},
		{Boundary: Open},
		{Rho: 0.05},
		{TauDist: mix},
		{Boundary: Open, Rho: 0.05},
	}
	seen := map[string]bool{}
	for _, s := range scenarios {
		c := s.Canonical()
		if seen[c] {
			t.Errorf("canonical collision: %q", c)
		}
		if !strings.Contains(c, "boundary=") {
			t.Errorf("canonical %q missing boundary", c)
		}
		seen[c] = true
	}
}
