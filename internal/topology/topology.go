// Package topology is the scenario vocabulary of the repository: it
// names and validates the lattice-geometry and population variants
// that generalize the paper's fixed setting (an n x n torus, full
// occupancy, one global intolerance tau).
//
// A Scenario bundles three orthogonal axes:
//
//   - Boundary: the paper's wrap-around torus, or open (hard-wall)
//     boundaries where neighborhoods clamp at the edges — the setting
//     of Barmpalias, Elwes and Lewis-Pye's unperturbed Schelling
//     segregation on open two-dimensional grids.
//   - Rho: a vacancy fraction, so a Bernoulli(rho) subset of sites
//     holds no agent — the vacancy-diluted lattices of Stauffer and
//     Solomon's "Ising, Schelling and self-organising segregation",
//     which also enable relocation ("move") dynamics into empty sites.
//   - TauDist: a deterministic, seeded distribution of per-site
//     intolerance thresholds (quenched disorder), replacing the single
//     global tau. Under the flip and swap dynamics, where agents never
//     change location, per-site and per-agent intolerance coincide.
//
// The zero Scenario is exactly the paper's setting, and every layer
// treats it as the fast path: default-scenario runs are bit-identical
// to the pre-scenario code, consuming the random stream identically.
// Canonical encodes a scenario into the stable form used by the
// content-addressed result cache and the grid-spec syntax.
package topology

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"gridseg/internal/rng"
)

// Boundary selects the lattice boundary condition.
type Boundary int

const (
	// Torus is the paper's wrap-around boundary: every site has a full
	// (2w+1)^2 neighborhood.
	Torus Boundary = iota
	// Open is the hard-wall boundary: neighborhoods clamp at the grid
	// edges, so corner and edge sites see truncated windows (down to
	// (w+1)^2 agents in a corner).
	Open
)

// Boundary labels used in grid specs and canonical encodings.
const (
	BoundaryTorus = "torus"
	BoundaryOpen  = "open"
)

// String returns "torus" or "open".
func (b Boundary) String() string {
	if b == Open {
		return BoundaryOpen
	}
	return BoundaryTorus
}

// ParseBoundary parses a boundary label ("" parses as the default
// torus).
func ParseBoundary(s string) (Boundary, error) {
	switch strings.ToLower(s) {
	case "", BoundaryTorus:
		return Torus, nil
	case BoundaryOpen, "wall", "hard":
		return Open, nil
	}
	return Torus, fmt.Errorf("topology: unknown boundary %q (want torus or open)", s)
}

// TauDist kinds.
const (
	// KindGlobal uses the run's single tau for every site (the paper's
	// setting).
	KindGlobal = "global"
	// KindMix draws each site's tau from a two-point mixture:
	// "mix:a,b:wa" gives tau=a with probability wa and tau=b otherwise.
	KindMix = "mix"
	// KindUniform draws each site's tau uniformly from [lo, hi]:
	// "uniform:lo:hi".
	KindUniform = "uniform"
)

// TauDist is a per-site intolerance distribution. The zero value is
// the global distribution. Construct with ParseTauDist; the canonical
// rendering (String) is what enters cache keys and cell identities.
type TauDist struct {
	Kind string  // "", KindGlobal, KindMix, or KindUniform
	A, B float64 // mix: the two tau values; uniform: lo, hi
	W    float64 // mix: probability of drawing A
}

// Global returns the default (single global tau) distribution.
func Global() TauDist { return TauDist{} }

// IsGlobal reports whether the distribution is the default global tau.
func (d TauDist) IsGlobal() bool { return d.Kind == "" || d.Kind == KindGlobal }

// g renders a float in its shortest exact form, the same rendering the
// cache layer uses, so equal values always canonicalize identically.
func g(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// String renders the canonical spec form: "global", "mix:a,b:w", or
// "uniform:lo:hi".
func (d TauDist) String() string {
	switch d.Kind {
	case KindMix:
		return fmt.Sprintf("mix:%s,%s:%s", g(d.A), g(d.B), g(d.W))
	case KindUniform:
		return fmt.Sprintf("uniform:%s:%s", g(d.A), g(d.B))
	}
	return KindGlobal
}

// Validate checks the distribution parameters.
func (d TauDist) Validate() error {
	inUnit := func(name string, v float64) error {
		if math.IsNaN(v) || v < 0 || v > 1 {
			return fmt.Errorf("topology: taudist %s=%v out of [0, 1]", name, v)
		}
		return nil
	}
	switch d.Kind {
	case "", KindGlobal:
		return nil
	case KindMix:
		for _, c := range []struct {
			name string
			v    float64
		}{{"a", d.A}, {"b", d.B}, {"w", d.W}} {
			if err := inUnit(c.name, c.v); err != nil {
				return err
			}
		}
		return nil
	case KindUniform:
		if err := inUnit("lo", d.A); err != nil {
			return err
		}
		if err := inUnit("hi", d.B); err != nil {
			return err
		}
		if d.A > d.B {
			return fmt.Errorf("topology: taudist uniform lo=%v > hi=%v", d.A, d.B)
		}
		return nil
	}
	return fmt.Errorf("topology: unknown taudist kind %q", d.Kind)
}

// ParseTauDist parses a distribution spec: "" or "global", "mix:a,b:w"
// (tau=a with probability w, else b), or "uniform:lo:hi". The result
// is validated.
func ParseTauDist(s string) (TauDist, error) {
	s = strings.TrimSpace(s)
	if s == "" || strings.EqualFold(s, KindGlobal) {
		return TauDist{}, nil
	}
	kind, rest, _ := strings.Cut(s, ":")
	var d TauDist
	switch strings.ToLower(kind) {
	case KindMix:
		// mix:a,b:w
		values, weight, ok := strings.Cut(rest, ":")
		if !ok {
			return TauDist{}, fmt.Errorf("topology: taudist %q: want mix:a,b:w", s)
		}
		as, bs, ok := strings.Cut(values, ",")
		if !ok {
			return TauDist{}, fmt.Errorf("topology: taudist %q: want mix:a,b:w", s)
		}
		var err1, err2, err3 error
		d.Kind = KindMix
		d.A, err1 = strconv.ParseFloat(as, 64)
		d.B, err2 = strconv.ParseFloat(bs, 64)
		d.W, err3 = strconv.ParseFloat(weight, 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return TauDist{}, fmt.Errorf("topology: taudist %q: bad number", s)
		}
	case KindUniform:
		los, his, ok := strings.Cut(rest, ":")
		if !ok {
			return TauDist{}, fmt.Errorf("topology: taudist %q: want uniform:lo:hi", s)
		}
		var err1, err2 error
		d.Kind = KindUniform
		d.A, err1 = strconv.ParseFloat(los, 64)
		d.B, err2 = strconv.ParseFloat(his, 64)
		if err1 != nil || err2 != nil {
			return TauDist{}, fmt.Errorf("topology: taudist %q: bad number", s)
		}
	default:
		return TauDist{}, fmt.Errorf("topology: unknown taudist %q (want global, mix:a,b:w, or uniform:lo:hi)", s)
	}
	if err := d.Validate(); err != nil {
		return TauDist{}, err
	}
	return d, nil
}

// Sample draws one tau from the distribution. Global distributions
// return the given global tau without consuming randomness.
func (d TauDist) Sample(global float64, src *rng.Source) float64 {
	switch d.Kind {
	case KindMix:
		if src.Bernoulli(d.W) {
			return d.A
		}
		return d.B
	case KindUniform:
		return d.A + (d.B-d.A)*src.Float64()
	}
	return global
}

// SampleField draws a per-site tau field of the given length in site
// order (row-major), or nil for the global distribution — the nil
// field is what keeps default-scenario runs on the scalar fast path.
func (d TauDist) SampleField(sites int, global float64, src *rng.Source) []float64 {
	if d.IsGlobal() {
		return nil
	}
	out := make([]float64, sites)
	for i := range out {
		out[i] = d.Sample(global, src)
	}
	return out
}

// Scenario bundles the three variant axes. The zero value is the
// paper's setting (torus, full occupancy, global tau).
type Scenario struct {
	// Boundary is the lattice boundary condition.
	Boundary Boundary
	// Rho is the vacancy fraction: each site is empty independently
	// with probability rho. Must be in [0, 1).
	Rho float64
	// TauDist is the per-site intolerance distribution.
	TauDist TauDist
}

// Default returns the paper's scenario.
func Default() Scenario { return Scenario{} }

// IsDefault reports whether the scenario is exactly the paper's
// setting, the precondition for the bit-packed fast engine and for
// the legacy (pre-scenario) cell identities.
func (s Scenario) IsDefault() bool {
	return s.Boundary == Torus && s.Rho == 0 && s.TauDist.IsGlobal()
}

// Validate checks the scenario parameters.
func (s Scenario) Validate() error {
	if s.Boundary != Torus && s.Boundary != Open {
		return fmt.Errorf("topology: unknown boundary %d", int(s.Boundary))
	}
	if math.IsNaN(s.Rho) || s.Rho < 0 || s.Rho >= 1 {
		return fmt.Errorf("topology: vacancy fraction rho=%v out of [0, 1)", s.Rho)
	}
	return s.TauDist.Validate()
}

// Canonical renders the scenario in the stable key=value form used by
// cell identities and cache keys: "boundary=torus rho=0 taudist=global"
// for the default. Equal scenarios always render identically.
func (s Scenario) Canonical() string {
	return fmt.Sprintf("boundary=%s rho=%s taudist=%s", s.Boundary, g(s.Rho), s.TauDist)
}

// String renders the scenario compactly for logs and errors.
func (s Scenario) String() string { return s.Canonical() }
