package gridseg

import (
	"errors"
	"strings"
	"testing"

	"gridseg/internal/batch"
	"gridseg/internal/grid"
)

// TestScenarioSeedStability pins the facade's seed-compatibility
// contract: a default-scenario model built through the scenario-aware
// constructor replays exactly the trajectory of the pre-scenario code
// (the fields just default), for both engines.
func TestScenarioSeedStability(t *testing.T) {
	base := Config{N: 48, W: 2, Tau: 0.42, Seed: 99}
	withDefaults := base
	withDefaults.Boundary = BoundaryTorus
	withDefaults.TauDist = "global"
	for _, engine := range []Engine{EngineReference, EngineFast} {
		a, b := base, withDefaults
		a.Engine, b.Engine = engine, engine
		ma, err := New(a)
		if err != nil {
			t.Fatal(err)
		}
		mb, err := New(b)
		if err != nil {
			t.Fatal(err)
		}
		ma.Run(0)
		mb.Run(0)
		if ma.String() != mb.String() || ma.Flips() != mb.Flips() {
			t.Fatalf("engine %v: explicit scenario defaults changed the trajectory", engine)
		}
	}
}

// TestScenarioModel exercises each scenario axis through the facade.
func TestScenarioModel(t *testing.T) {
	open, err := New(Config{N: 32, W: 2, Tau: 0.42, Seed: 1, Boundary: BoundaryOpen})
	if err != nil {
		t.Fatal(err)
	}
	if open.Engine() != EngineFast {
		t.Errorf("open-boundary auto engine = %v, want the fast engine (scenarios are covered)", open.Engine())
	}
	if _, fixated := open.Run(0); !fixated {
		t.Error("open-boundary Glauber did not fixate")
	}
	st := open.SegregationStats()
	if st.HappyFraction != 1 {
		t.Errorf("open-boundary fixation happy fraction = %v, want 1 (tau < 1/2)", st.HappyFraction)
	}

	vac, err := New(Config{N: 32, W: 2, Tau: 0.42, Seed: 2, Rho: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(vac.Scenario(), "rho=0.1") {
		t.Errorf("scenario = %q", vac.Scenario())
	}
	vac.Run(0)
	if !strings.Contains(vac.String(), ".") {
		t.Error("vacancy model renders no vacancies")
	}
	if !strings.Contains(vac.ASCII(), " ") {
		t.Error("vacancy ASCII renders no blanks")
	}

	het, err := New(Config{N: 32, W: 2, Tau: 0.42, Seed: 3, TauDist: "mix:0.35,0.45:0.5"})
	if err != nil {
		t.Fatal(err)
	}
	if _, fixated := het.Run(0); !fixated {
		t.Error("heterogeneous-tau model did not fixate")
	}
}

// TestScenarioMoveModel drives the relocation dynamic end to end
// through the facade and checks conservation.
func TestScenarioMoveModel(t *testing.T) {
	m, err := New(Config{N: 32, W: 2, Tau: 0.42, Seed: 4, Rho: 0.15, Dynamic: Move})
	if err != nil {
		t.Fatal(err)
	}
	before := m.SegregationStats().Magnetization
	if _, terminal := m.Run(0); !terminal && m.Flips() == 0 {
		t.Error("move model neither moved nor terminated")
	}
	after := m.SegregationStats().Magnetization
	if before != after {
		t.Errorf("move dynamic drifted magnetization: %v -> %v", before, after)
	}
}

// TestScenarioRejections pins the facade validation: bad scenarios,
// move without vacancies, and fast-engine requests outside the fast
// engine's coverage (oversized horizons) all fail loudly — while
// scenario axes and all three dynamics are accepted on the fast
// engine.
func TestScenarioRejections(t *testing.T) {
	cases := []Config{
		{N: 32, W: 2, Tau: 0.42, Rho: 1},
		{N: 32, W: 2, Tau: 0.42, Rho: -0.1},
		{N: 32, W: 2, Tau: 0.42, TauDist: "gauss:0:1"},
		{N: 32, W: 2, Tau: 0.42, Dynamic: Move},
	}
	for _, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %+v accepted, want error", cfg)
		}
	}
	// Scenario axes now run on the fast engine, including explicitly.
	for _, cfg := range []Config{
		{N: 32, W: 2, Tau: 0.42, Boundary: BoundaryOpen, Engine: EngineFast},
		{N: 32, W: 2, Tau: 0.42, Rho: 0.1, Engine: EngineFast},
		{N: 32, W: 2, Tau: 0.42, TauDist: "mix:0.35,0.45:0.5", Engine: EngineFast},
		{N: 32, W: 2, Tau: 0.42, Rho: 0.1, Dynamic: Kawasaki, Engine: EngineFast},
		{N: 32, W: 2, Tau: 0.42, Rho: 0.1, Dynamic: Move, Engine: EngineFast},
	} {
		m, err := New(cfg)
		if err != nil {
			t.Errorf("scenario fast config %+v rejected: %v", cfg, err)
			continue
		}
		if m.Engine() != EngineFast {
			t.Errorf("config %+v resolved to %v, want fast", cfg, m.Engine())
		}
	}
	// The typed sentinel names what the fast engine cannot run.
	if _, err := New(Config{N: 301, W: 150, Tau: 0.42, Engine: EngineFast}); !errors.Is(err, ErrNeighborhoodTooLarge) {
		t.Errorf("fast oversized-horizon request: err = %v, want ErrNeighborhoodTooLarge", err)
	}
	// Auto degrades the oversized horizon to the reference engine
	// instead of failing.
	m, err := New(Config{N: 301, W: 150, Tau: 0.42})
	if err != nil {
		t.Fatal(err)
	}
	if m.Engine() != EngineReference {
		t.Errorf("auto oversized-horizon engine = %v, want reference", m.Engine())
	}
}

// TestValidateGridSpecWindow pins the typed-error path through the
// public spec validator: a horizon too large for its lattice is
// rejected with grid.ErrWindowTooLarge at validation time.
func TestValidateGridSpecWindow(t *testing.T) {
	_, err := ValidateGridSpec("n=5 w=3 tau=0.42")
	if !errors.Is(err, grid.ErrWindowTooLarge) {
		t.Fatalf("err = %v, want grid.ErrWindowTooLarge", err)
	}
	if cells, err := ValidateGridSpec("n=16 w=2 tau=0.42 boundary=open rho=0.05"); err != nil || cells != 1 {
		t.Fatalf("valid scenario spec: cells=%d err=%v", cells, err)
	}
}

// TestRunGridScenarioAxes runs a small scenario sweep end to end and
// checks the artifact gains the scenario columns while remaining
// deterministic across worker counts.
func TestRunGridScenarioAxes(t *testing.T) {
	const spec = "n=16 w=1 tau=0.42 boundary=torus,open rho=0,0.1 reps=2"
	run := func(workers int) (string, string) {
		r, err := RunGrid(spec, GridOptions{Seed: 5, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		var csv, js strings.Builder
		if err := r.WriteCSV(&csv); err != nil {
			t.Fatal(err)
		}
		if err := r.WriteJSON(&js); err != nil {
			t.Fatal(err)
		}
		return csv.String(), js.String()
	}
	csv1, js1 := run(1)
	csv4, js4 := run(4)
	if csv1 != csv4 || js1 != js4 {
		t.Fatal("scenario sweep depends on worker count")
	}
	if !strings.Contains(csv1, "boundary,rho,taudist") {
		t.Errorf("scenario columns missing from CSV header: %.120s", csv1)
	}
	if !strings.Contains(js1, `"boundary": "open"`) {
		t.Error("scenario fields missing from JSON artifact")
	}
	// A default sweep keeps the pre-scenario artifact shape.
	r, err := RunGrid("n=16 w=1 tau=0.42 reps=1", GridOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var csv strings.Builder
	if err := r.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(csv.String(), "boundary") {
		t.Error("default sweep grew scenario columns")
	}
}

// TestCellStoreScenarioIsolation guards the cache-key contract at the
// sweep level: the same classic parameters under different scenarios
// must occupy distinct store slots.
func TestCellStoreScenarioIsolation(t *testing.T) {
	st := NewMemoryStore()
	if _, err := RunGrid("n=16 w=1 tau=0.42 reps=1", GridOptions{Seed: 5, Store: st}); err != nil {
		t.Fatal(err)
	}
	r, err := RunGrid("n=16 w=1 tau=0.42 boundary=open reps=1", GridOptions{Seed: 5, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	if c := r.Cache(); c.Hits != 0 || c.Misses != 1 {
		t.Fatalf("open-boundary cell aliased the torus slot: %+v", c)
	}
	// Same scenario again: now a pure cache hit.
	r, err = RunGrid("n=16 w=1 tau=0.42 boundary=open reps=1", GridOptions{Seed: 5, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	if c := r.Cache(); c.Hits != 1 || c.Misses != 0 {
		t.Fatalf("identical scenario cell missed the cache: %+v", c)
	}
}

// TestSweepCellMoveDynamic runs the move dynamic through the batch
// runner used by RunGrid.
func TestSweepCellMoveDynamic(t *testing.T) {
	r, err := RunGrid("n=16 w=1 tau=0.42 dyn=move rho=0.1 reps=2", GridOptions{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Fatalf("cells = %d", r.Len())
	}
	var csv strings.Builder
	if err := r.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv.String(), "move") {
		t.Error("move rows missing from artifact")
	}
}

// TestBatchMoveLabel keeps the facade and batch dynamic labels in sync.
func TestBatchMoveLabel(t *testing.T) {
	if batch.Move != "move" {
		t.Fatalf("batch.Move = %q", batch.Move)
	}
}
