# Developer entry points. CI runs verify, docs, staticcheck, and
# bench-check.

.PHONY: all build test race race-stress cluster-test obscheck fuzz bench bench-check bench-check-ci memcheck diff docs profile staticcheck verify

all: verify

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

# Repeated race-detector passes over the concurrent subsystems: the
# domain-decomposed parallel engine (both the deterministic and the
# free-running protocol) and the server's job dispatcher with its SSE
# fan-out. Five repetitions vary goroutine interleavings enough to
# surface ordering-dependent races that a single -race pass misses.
race-stress:
	go test -race -count=5 ./internal/dynamics/pareng/ ./internal/server/

# Distributed-fabric gate: the lease-protocol unit tests (fake clock),
# the worker loop, the journal replay/compaction edge cases, and the
# chaos e2es — the worker-kill sweep (coordinator + three workers with
# seeded fault injection, two killed mid-run) and the coordinator-kill
# restart (journaled coordinator killed mid-sweep and rebooted against
# the same journal and store, with recovery-metrics assertions) — all
# under the race detector, then a segload smoke against an in-process
# server as a closed-loop client sanity check.
cluster-test:
	go test -race -run 'TestCluster|TestLease|TestLate|TestHeartbeat|TestComplete|TestWorker|TestNaNValues|TestChaos|TestJournal' ./internal/server/ ./internal/fabric/
	go run ./cmd/segload -inproc -spec "n=16 w=1 tau=0.40,0.45 reps=2" -clients 8 -sse 2 -duration 2s -metrics-url auto

# Observability gate: boot a segd in-process, submit a grid behind a
# blocker run, require a live trajectory stream of decodable frames on
# /grids/{id}/live, then scrape /metrics and require the exposition to
# parse and carry every expected metric family.
obscheck:
	go run ./cmd/obscheck

# Short fuzz passes over the grid-spec parser and the lattice
# configuration codec (the CI-sized budget; raise -fuzztime locally
# for deeper exploration).
fuzz:
	go test -run '^$$' -fuzz FuzzParseGrid -fuzztime 30s ./internal/batch/
	go test -run '^$$' -fuzz FuzzUnmarshalBinary -fuzztime 30s ./internal/grid/

# Record the benchmark trajectory (flip throughput on both engines —
# default path, every scenario axis, and the Kawasaki and Move
# dynamics — plus run-to-fixation at small and giant scale and the
# grid cell rate) into the committed baseline.
bench:
	go run ./cmd/bench -out BENCH_2.json

# Fail when any trajectory metric regresses >20% vs the committed
# baseline (same-machine comparison; record the baseline with `make
# bench` on the machine you compare on).
bench-check:
	go run ./cmd/bench -baseline BENCH_2.json

# CI variant for heterogeneous runners: machine-independent fast-vs-
# reference speedup gate (>= 3x in the same run), a parallel-vs-
# sequential scaling gate (>= 3x, enforced only on runners with >= 8
# CPUs, reported otherwise), plus a loose 2x absolute backstop against
# catastrophic regressions.
bench-check-ci:
	go run ./cmd/bench -baseline BENCH_2.json -tolerance 1.0 -minspeedup 3 -minscaling 3

# Giant-grid memory gate: run the n=4096 fixation probe with the
# allocator returning freed pages eagerly (so VmHWM reflects live
# memory, not lazily-reclaimed spans) and fail if peak RSS crosses the
# ceiling. Pins the O(n*tile) streaming-measurement claim.
memcheck:
	GODEBUG=madvdontneed=1 go run ./cmd/bench -memcheck -maxrss 384

# Run the engine differential harness only (reference vs fast).
diff:
	go test -run TestEnginesBitIdentical -v ./internal/difftest/

# Capture CPU and allocation pprof profiles for the flip-throughput
# benchmarks (both engines, every scenario path, the swap dynamic, and
# the batch grid-cell rate). Read them with:
#   go tool pprof -top profiles/cpu.prof
#   go tool pprof -top -sample_index=alloc_space profiles/mem.prof
# See README "Profiling the hot path" for what to look for.
profile:
	mkdir -p profiles
	go test -run '^$$' -bench 'FlipThroughput|SwapThroughput|GridCell' -benchmem \
		-cpuprofile profiles/cpu.prof -memprofile profiles/mem.prof .
	@echo "wrote profiles/cpu.prof and profiles/mem.prof"

# Docs checks: markdown links, experiment index vs registry, CLI flag
# documentation coverage, and store key-schema stability (the CI docs
# job runs the same set).
docs:
	go test -run 'TestDocs' .
	go test -run TestUsageCoverage ./cmd/...
	go test -run 'TestKey' ./internal/store/

# Static analysis beyond go vet. The version is pinned so local runs
# and the CI job agree on the finding set.
staticcheck:
	go run honnef.co/go/tools/cmd/staticcheck@2025.1.1 ./...

verify: build
	gofmt -l . | (! grep .) || (echo "gofmt needed" >&2; exit 1)
	go vet ./...
	go test ./...
