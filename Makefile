# Developer entry points. CI runs verify, docs, and bench-check.

.PHONY: all build test race fuzz bench bench-check diff docs verify

all: verify

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

# Short fuzz pass over the grid-spec parser (the CI-sized budget;
# raise -fuzztime locally for deeper exploration).
fuzz:
	go test -run '^$$' -fuzz FuzzParseGrid -fuzztime 30s ./internal/batch/

# Record the benchmark trajectory (flip throughput on both engines,
# run-to-fixation, grid cell rate) into the committed baseline.
bench:
	go run ./cmd/bench -out BENCH_2.json

# Fail when any trajectory metric regresses >20% vs the committed
# baseline (same-machine comparison; record the baseline with `make
# bench` on the machine you compare on).
bench-check:
	go run ./cmd/bench -baseline BENCH_2.json

# CI variant for heterogeneous runners: machine-independent fast-vs-
# reference speedup gate (>= 3x in the same run) plus a loose 2x
# absolute backstop against catastrophic regressions.
bench-check-ci:
	go run ./cmd/bench -baseline BENCH_2.json -tolerance 1.0 -minspeedup 3

# Run the engine differential harness only (reference vs fast).
diff:
	go test -run TestEnginesBitIdentical -v ./internal/difftest/

# Docs checks: markdown links, experiment index vs registry, CLI flag
# documentation coverage, and store key-schema stability (the CI docs
# job runs the same set).
docs:
	go test -run 'TestDocs' .
	go test -run TestUsageCoverage ./cmd/...
	go test -run 'TestKey' ./internal/store/

verify: build
	gofmt -l . | (! grep .) || (echo "gofmt needed" >&2; exit 1)
	go vet ./...
	go test ./...
